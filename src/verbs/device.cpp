#include "verbs/device.hpp"

#include <algorithm>
#include <cstring>

#include "common/audit.hpp"

namespace rubin::verbs {

namespace {

/// The slice of a SendWr the delivery side of a transmit needs. The full
/// SendWr carries an SGE list and payload handles (~4x this size); those
/// stay on the posting side, and only this header rides the per-frame
/// delivery closures.
struct WireWr {
  std::uint64_t wr_id;
  std::uint64_t remote_addr;
  std::uint32_t rkey;
  std::uint32_t read_len;
  Opcode opcode;
  bool signaled;
};

}  // namespace

const char* to_string(WcStatus s) noexcept {
  switch (s) {
    case WcStatus::kSuccess: return "success";
    case WcStatus::kLocalProtectionError: return "local-protection-error";
    case WcStatus::kRemoteAccessError: return "remote-access-error";
    case WcStatus::kRecvBufferTooSmall: return "recv-buffer-too-small";
    case WcStatus::kRnrRetryExceeded: return "rnr-retry-exceeded";
    case WcStatus::kTransportRetryExceeded: return "transport-retry-exceeded";
    case WcStatus::kRemoteOperationError: return "remote-operation-error";
    case WcStatus::kWorkRequestFlushed: return "work-request-flushed";
  }
  return "?";
}

const char* to_string(PostResult r) noexcept {
  switch (r) {
    case PostResult::kOk: return "ok";
    case PostResult::kQueueFull: return "queue-full";
    case PostResult::kInvalidState: return "invalid-state";
    case PostResult::kTooLarge: return "too-large";
    case PostResult::kInvalidSge: return "invalid-sge";
  }
  return "?";
}

// -------------------------------------------------------------- Device ---

Device::Device(net::Fabric& fabric, net::HostId host)
    : fabric_(&fabric), host_(host) {}

CompletionChannel* Device::create_channel() {
  channels_.push_back(std::make_unique<CompletionChannel>(simulator()));
  return channels_.back().get();
}

CompletionQueue* Device::create_cq(std::size_t capacity,
                                   CompletionChannel* channel) {
  cqs_.push_back(std::make_unique<CompletionQueue>(
      simulator(), capacity, channel, cost().completion_event_cost));
  return cqs_.back().get();
}

SharedReceiveQueue* Device::create_srq(SrqConfig cfg) {
  srqs_.push_back(std::unique_ptr<SharedReceiveQueue>(
      new SharedReceiveQueue(*this, cfg)));
  return srqs_.back().get();
}

std::shared_ptr<QueuePair> Device::create_qp(ProtectionDomain& pd,
                                             CompletionQueue& send_cq,
                                             CompletionQueue& recv_cq,
                                             QpConfig cfg) {
  const std::uint32_t qpn = next_qpn_++;
  auto qp = std::shared_ptr<QueuePair>(
      new QueuePair(*this, pd, send_cq, recv_cq, qpn, cfg));
  qps_[qpn] = qp;
  if (cfg.srq != nullptr) cfg.srq->attach(qp);
  return qp;
}

std::shared_ptr<QueuePair> Device::find_qp(std::uint32_t qpn) {
  const auto it = qps_.find(qpn);
  return it == qps_.end() ? nullptr : it->second.lock();
}

sim::Time Device::nic_admit(sim::Time ready, sim::Time work) {
  const sim::Time start = std::max(ready, nic_free_);
  nic_free_ = start + work;
  return nic_free_;
}

sim::Task<std::uint32_t> Device::flip_write_permission(ProtectionDomain& pd,
                                                       MemoryRegion* mr,
                                                       bool grant_remote_write) {
  const std::uint32_t fresh = pd.rekey_remote(
      mr, grant_remote_write ? kAccessRemoteWrite : 0u);
  co_await simulator().sleep(cost().mr_register_time(mr->length()));
  co_return fresh;
}

std::size_t Device::inject_qp_errors() {
  std::size_t faulted = 0;
  for (auto& [qpn, weak] : qps_) {
    if (auto qp = weak.lock(); qp && qp->state() != QpState::kError) {
      qp->set_error();
      ++faulted;
    }
  }
  return faulted;
}

void Device::inject_nic_stall(sim::Time duration) {
  const sim::Time now = simulator().now();
  nic_free_ = std::max(nic_free_, now + duration);
}

// ----------------------------------------------------------- QueuePair ---

QueuePair::QueuePair(Device& dev, ProtectionDomain& pd,
                     CompletionQueue& send_cq, CompletionQueue& recv_cq,
                     std::uint32_t qpn, QpConfig cfg)
    : dev_(&dev),
      pd_(&pd),
      send_cq_(&send_cq),
      recv_cq_(&recv_cq),
      qpn_(qpn),
      cfg_(cfg) {}

void QueuePair::connect(Device& remote, std::uint32_t remote_qpn) {
  remote_dev_ = &remote;
  remote_qpn_ = remote_qpn;
  if (state_ == QpState::kInit) state_ = QpState::kReadyToSend;
}

net::HostId QueuePair::remote_host() const noexcept {
  return remote_dev_ != nullptr ? remote_dev_->host() : 0;
}

sim::Task<PostResult> QueuePair::post_send(std::vector<SendWr> wrs) {
  co_return co_await post_send(std::span<SendWr>(wrs));
}

sim::Task<PostResult> QueuePair::post_send(std::span<SendWr> wrs) {
  auto& sim = dev_->simulator();
  const auto& cm = dev_->cost();
  co_await sim.sleep(cm.post_call_cpu);
  if (state_ != QpState::kReadyToSend) co_return PostResult::kInvalidState;
  if (wrs.size() > send_slots_free()) co_return PostResult::kQueueFull;
  for (const SendWr& wr : wrs) {
    // EINVAL before anything is charged or posted: an empty sg_list and
    // an over-capability one are both programming errors — nothing is
    // silently clamped.
    if (wr.sg_list.empty() || wr.sg_list.size() > cfg_.max_sge) {
      co_return PostResult::kInvalidSge;
    }
    const std::uint64_t total = wr.sg_list.total_length();
    if (wr.inline_data &&
        (total > dev_->max_inline() || total > cfg_.max_inline)) {
      co_return PostResult::kTooLarge;
    }
  }

  // CPU: build each WQE; inline payloads are copied into the WQE now.
  // Inline data needs no memory registration — the CPU reads the user
  // buffer directly (IBV_SEND_INLINE ignores the lkey). The copy charge
  // is one copy_time over the *total* length: charging per SGE would
  // truncate fractional nanoseconds per slice and break bit-identity
  // with the flattened equivalent.
  sim::Time cpu = static_cast<sim::Time>(wrs.size()) * cm.wqe_build_cpu;
  std::vector<FrameVec> inline_payloads;
  for (std::size_t i = 0; i < wrs.size(); ++i) {
    const SendWr& wr = wrs[i];
    if (!wr.inline_data) continue;
    if (inline_payloads.empty()) inline_payloads.resize(wrs.size());
    cpu += cm.copy_time(wr.sg_list.total_length());
    if (!wr.shared_payload.empty()) {
      // The WQE copy is elided: the refcounted handles pin the payload
      // until the NIC is done with it. The copy_time charge above stays —
      // real inline posting pays it.
      inline_payloads[i] = wr.shared_payload;
    } else {
      FrameVec gathered;
      for (const Sge& s : wr.sg_list) {
        const auto* src = reinterpret_cast<const std::uint8_t*>(s.addr);
        gathered.append(SharedBytes::copy_of(ByteView(src, s.length)));
      }
      inline_payloads[i] = std::move(gathered);
    }
  }
  co_await sim.sleep(cpu);

  // NIC pipeline: the batch becomes visible one doorbell after the post.
  sim::Time ready = sim.now() + cm.doorbell;
  for (std::size_t i = 0; i < wrs.size(); ++i) {
    SendWr& wr = wrs[i];
    ++send_queue_used_;

    const bool need_local_write = wr.opcode == Opcode::kRdmaRead;
    bool protection_ok = true;
    if (!wr.inline_data) {
      // Every SGE is validated independently — a slice spanning an MR
      // boundary or a wrong lkey on the Nth element fails the whole WR,
      // exactly as hardware NAKs the WQE.
      for (const Sge& s : wr.sg_list) {
        if (pd_->check_local(s, need_local_write) == nullptr) {
          protection_ok = false;
          break;
        }
      }
    }
    if (!protection_ok) {
      complete_send(wr.wr_id, wr.opcode, WcStatus::kLocalProtectionError,
                    /*signaled=*/true);
      break;
    }
    if (remote_dev_ == nullptr) {
      complete_send(wr.wr_id, wr.opcode, WcStatus::kRemoteOperationError,
                    /*signaled=*/true);
      break;
    }

    // NIC work: fetch + process the WQE; read the payload over DMA unless
    // it was inlined into the WQE.
    if (wr.opcode == Opcode::kRdmaRead) {
      pending_reads_[wr.wr_id] = PendingRead{wr.sg_list, wr.signaled};
    }

    const bool has_payload = wr.opcode != Opcode::kRdmaRead;
    sim::Time nic_work = cm.wqe_processing;
    if (has_payload && !wr.inline_data) {
      // Non-inline: the NIC fetches the payload over PCIe. One fetch
      // latency per WQE and one dma_time over the total — the gather is
      // pipelined on hardware, and per-slice charging would truncate
      // differently than the flattened equivalent.
      nic_work += cm.dma_fetch_latency + cm.dma_time(wr.sg_list.total_length());
    }
    const sim::Time tx_ready = dev_->nic_admit(ready, nic_work);
    ready = tx_ready;
    ++dev_->messages_sent_;

    // RC transport-retry watchdog: if this WR never completes (frames
    // vanished into a partition), the QP breaks instead of hanging.
    const std::uint64_t op = posted_ops_++;
    if (cfg_.transport_retry_timeout_ns > 0) {
      auto watchdog = weak_from_this();
      sim.schedule_after(cfg_.transport_retry_timeout_ns, [watchdog, op] {
        auto qp = watchdog.lock();
        if (!qp || qp->state_ != QpState::kReadyToSend) return;
        if (qp->completed_ops_ > op) return;  // completed in time
        qp->complete_send(0, Opcode::kSend,
                          WcStatus::kTransportRetryExceeded, true);
      });
    }

    // Snapshot the payload when the NIC actually reads it (zero-copy
    // semantics: mutating a registered send buffer before the WR
    // completes is a data race, exactly as on hardware). With a
    // shared_payload handle the snapshot is free: immutability means the
    // bytes the NIC would DMA now are the bytes the handle already holds.
    FrameVec payload;
    if (!inline_payloads.empty()) payload = std::move(inline_payloads[i]);
    if (!wr.inline_data && !wr.shared_payload.empty()) {
      payload = std::move(wr.shared_payload);
    }
    // Only the header slice of the WR survives past the post: the DMA-time
    // snapshot needs the SGE list and the delivery side needs WireWr, so
    // the closures capture those pieces instead of the full SendWr (SGE
    // list + payload handles + flags, ~2x the size).
    const WireWr w{wr.wr_id, wr.remote_addr, wr.rkey,
                   static_cast<std::uint32_t>(wr.sg_list.total_length()),
                   wr.opcode, wr.signaled};
    const bool recheck = !wr.inline_data && wr.opcode != Opcode::kRdmaRead;
    auto self = weak_from_this();
    Device* rdev = remote_dev_;
    const std::uint32_t rqpn = remote_qpn_;
    sim.schedule_at(tx_ready, [this, self, w, recheck, rdev, rqpn,
                               sg_list = wr.sg_list,
                               payload = std::move(payload)]() mutable {
      if (self.expired()) return;
      if (recheck) {
        FrameVec snapshot;
        for (const Sge& s : sg_list) {
          const MemoryRegion* m = pd_->check_local(s, false);
          if (m == nullptr) {  // deregistered between post and DMA
            complete_send(w.wr_id, w.opcode,
                          WcStatus::kLocalProtectionError, true);
            return;
          }
          if (payload.empty()) {
            snapshot.append(
                SharedBytes::copy_of(ByteView(m->data_at(s.addr), s.length)));
          }
        }
        if (payload.empty()) payload = std::move(snapshot);
      }
      const std::size_t wire_len =
          w.opcode == Opcode::kRdmaRead ? 28 : payload.total_size();
      dev_->fabric().transmit(
          dev_->host(), rdev->host(), wire_len,
          [self, w, rdev, rqpn, payload = std::move(payload)](
              const net::FrameFault& fault) mutable {
            // Fabric fault verdicts, RC semantics. A duplicated frame
            // carries a PSN the responder has already acked: everything
            // but an RDMA WRITE (whose DMA is idempotent and completes
            // nothing on re-execution) is discarded, and the ghost never
            // completes the sender's WR a second time.
            if (fault.duplicate && w.opcode != Opcode::kRdmaWrite) {
              RUBIN_AUDIT_COUNT("verbs.duplicate_discarded", 1);
              return;
            }
            auto sender = self.lock();
            auto target = rdev->find_qp(rqpn);
            if (target == nullptr || target->state_ == QpState::kError) {
              if (sender && !fault.duplicate) {
                sender->complete_send(w.wr_id, w.opcode,
                                      WcStatus::kRemoteOperationError, true);
              }
              return;
            }
            if (fault.corrupt) {
              // A garbled header-only frame (READ request) fails the ICRC
              // and is dropped — the transport watchdog notices. A garbled
              // payload is delivered: detecting it is the MAC layer's job,
              // which is exactly what FaultLab scenarios assert.
              if (w.opcode == Opcode::kRdmaRead || payload.empty()) return;
              SharedBytes garbled = payload.flatten();
              garbled.mutable_data()[fault.corrupt_offset % garbled.size()] ^=
                  fault.corrupt_mask;
              payload = FrameVec(std::move(garbled));
            }
            switch (w.opcode) {
              case Opcode::kSend:
                target->on_send_arrival(InboundSend{
                    std::move(payload), self, w.wr_id, w.signaled, 0, 0});
                break;
              case Opcode::kRdmaWrite:
                target->on_write_arrival(
                    w.rkey, w.remote_addr, std::move(payload),
                    fault.duplicate ? std::weak_ptr<QueuePair>{} : self,
                    w.wr_id, w.signaled && !fault.duplicate);
                break;
              case Opcode::kRdmaRead:
                target->on_read_request(w.remote_addr, w.rkey, w.read_len,
                                        self, w.wr_id);
                break;
              case Opcode::kRecv:
                break;  // unreachable: not a send opcode
            }
          });
    });
  }
  co_return PostResult::kOk;
}

sim::Task<PostResult> QueuePair::post_send_one(SendWr wr) {
  // The WR parameter lives in this coroutine's frame, which the awaiting
  // caller keeps alive until the post completes — exactly the span
  // contract, with no wrapper vector.
  co_return co_await post_send(std::span<SendWr>(&wr, 1));
}

sim::Task<PostResult> QueuePair::post_recv_one(RecvWr wr) {
  co_return co_await post_recv(std::span<const RecvWr>(&wr, 1));
}

sim::Task<PostResult> QueuePair::post_recv(std::vector<RecvWr> wrs) {
  co_return co_await post_recv(std::span<const RecvWr>(wrs));
}

sim::Task<PostResult> QueuePair::post_recv(std::span<const RecvWr> wrs) {
  auto& sim = dev_->simulator();
  const auto& cm = dev_->cost();
  co_await sim.sleep(cm.post_call_cpu +
                     static_cast<sim::Time>(wrs.size()) * cm.wqe_build_cpu);
  co_return post_recv_now(wrs);
}

PostResult QueuePair::post_recv_now(std::vector<RecvWr> wrs) {
  return post_recv_now(std::span<const RecvWr>(wrs));
}

PostResult QueuePair::post_recv_now(std::span<const RecvWr> wrs) {
  if (state_ == QpState::kError) return PostResult::kInvalidState;
  // An SRQ-attached QP has no receive queue of its own: post to the SRQ
  // (EINVAL in real verbs).
  if (cfg_.srq != nullptr) return PostResult::kInvalidState;
  if (recv_queue_.size() + wrs.size() > cfg_.max_recv_wr) {
    return PostResult::kQueueFull;
  }
  for (const RecvWr& wr : wrs) recv_queue_.push_back(wr);
  drain_inbound();
  return PostResult::kOk;
}

void QueuePair::set_error() {
  if (state_ == QpState::kError) return;
  state_ = QpState::kError;
  // Flush posted receives. SRQ WRs are *not* flushed — they belong to the
  // shared queue until taken (ibv_srq semantics), so an SRQ-attached QP
  // has an empty recv_queue_ and this loop does nothing.
  while (!recv_queue_.empty()) {
    const RecvWr wr = recv_queue_.front();
    recv_queue_.pop_front();
    complete_recv(Completion{wr.wr_id, Opcode::kRecv,
                             WcStatus::kWorkRequestFlushed, 0, qpn_, {}});
  }
  // Inbound sends parked behind RNR backpressure belong to remote WRs that
  // will never be matched now: NAK their senders (RC semantics — the
  // requester's WR must complete, with error, or its resources leak).
  auto& sim = dev_->simulator();
  const auto& cm = dev_->cost();
  for (const InboundSend& in : inbound_) {
    if (auto sender = in.sender.lock()) {
      sim.schedule_after(cm.ack_latency, [sender, wr_id = in.sender_wr_id] {
        sender->complete_send(wr_id, Opcode::kSend,
                              WcStatus::kRemoteOperationError, true);
      });
    }
  }
  inbound_.clear();
}

void QueuePair::on_send_arrival(InboundSend in) {
  in.first_arrival = dev_->simulator().now();
  in.retries_left = cfg_.rnr_retries;
  inbound_.push_back(std::move(in));
  drain_inbound();
  if (!inbound_.empty() && cfg_.srq != nullptr) {
    // Parked because the shared queue is drained: RNR-style backpressure.
    // A later SRQ refill re-drains us (attach order) ahead of the timer.
    RUBIN_AUDIT_COUNT("verbs.srq.rnr_backpressure", 1);
  }
  if (!inbound_.empty() && !rnr_timer_armed_) {
    rnr_timer_armed_ = true;
    auto self = weak_from_this();
    dev_->simulator().schedule_after(cfg_.rnr_timeout_ns, [self] {
      if (auto qp = self.lock()) qp->rnr_tick();
    });
  }
}

void QueuePair::drain_inbound() {
  auto& sim = dev_->simulator();
  const auto& cm = dev_->cost();
  SharedReceiveQueue* srq = cfg_.srq;
  while (!inbound_.empty() && state_ != QpState::kError &&
         (srq != nullptr ? srq->posted() > 0 : !recv_queue_.empty())) {
    InboundSend in = std::move(inbound_.front());
    inbound_.pop_front();
    RecvWr rwr;
    if (srq != nullptr) {
      rwr = srq->take();
    } else {
      rwr = recv_queue_.front();
      recv_queue_.pop_front();
    }
    const bool from_srq = srq != nullptr;

    const MemoryRegion* mr = pd_->check_local(rwr.sge, /*need_write=*/true);
    auto fail_both = [&](WcStatus recv_status, WcStatus send_status) {
      complete_recv(
          Completion{rwr.wr_id, Opcode::kRecv, recv_status, 0, qpn_, {}});
      set_error();
      if (auto sender = in.sender.lock()) {
        sim.schedule_after(cm.ack_latency, [sender, in_wr = in.sender_wr_id,
                                            send_status] {
          sender->complete_send(in_wr, Opcode::kSend, send_status, true);
        });
      }
    };
    if (mr == nullptr) {
      fail_both(WcStatus::kLocalProtectionError, WcStatus::kRemoteOperationError);
      return;
    }
    if (in.payload.total_size() > rwr.sge.length) {
      fail_both(WcStatus::kRecvBufferTooSmall, WcStatus::kRemoteOperationError);
      return;
    }

    // DMA the payload into the receive buffer, then complete.
    const std::uint32_t len = static_cast<std::uint32_t>(in.payload.total_size());
    const sim::Time done = dev_->nic_admit(
        sim.now(), cm.recv_match_cost + cm.dma_time(len));
    std::uint8_t* dst = mr->data_at(rwr.sge.addr);
    auto self = weak_from_this();
    sim.schedule_at(
        done, [self, dst, in = std::move(in), rwr, len, from_srq, &cm,
               &sim]() mutable {
          auto qp = self.lock();
          if (!qp || qp->state_ == QpState::kError) {
            // An SRQ WR belongs to the consuming QP from take() onward: a
            // QP torn down with the DMA in flight flush-completes it on
            // its own CQ (routing survives teardown). Per-QP WRs were
            // already flushed by set_error.
            if (qp && from_srq) {
              qp->complete_recv(Completion{rwr.wr_id, Opcode::kRecv,
                                           WcStatus::kWorkRequestFlushed, 0,
                                           qp->qpn_, {}});
            }
            // The responder died mid-DMA; the requester still gets a NAK —
            // its WR must complete (with error) or its resources leak.
            sim.schedule_after(
                cm.ack_latency, [s = in.sender, wr_id = in.sender_wr_id] {
                  if (auto q = s.lock()) {
                    q->complete_send(wr_id, Opcode::kSend,
                                     WcStatus::kRemoteOperationError, true);
                  }
                });
            return;
          }
          // The DMA-write charge is already in `done`; the physical copy
          // into the MR happens only when the receiver reads the MR bytes
          // directly. capture_payload consumers get the handle instead —
          // a spliced frame is gathered here, at the receiver, which is
          // where the paper's measured receive-side copy lives (it is
          // counted as such, never as a send-path copy).
          SharedBytes captured;
          if (rwr.capture_payload) {
            if (in.payload.slice_count() <= 1) {
              if (in.payload.slice_count() == 1) {
                captured = in.payload.slice_at(0);
              }
            } else {
              RUBIN_AUDIT_COUNT("datapath.recv_copy_bytes",
                                in.payload.total_size());
              captured = SharedBytes::allocate(in.payload.total_size());
              std::uint8_t* p = captured.mutable_data();
              for (const SharedBytes& s : in.payload) {
                std::memcpy(p, s.data(), s.size());
                p += s.size();
              }
            }
          } else {
            RUBIN_AUDIT_COUNT("datapath.recv_copy_bytes",
                              in.payload.total_size());
            std::uint8_t* p = dst;
            for (const SharedBytes& s : in.payload) {
              std::memcpy(p, s.data(), s.size());
              p += s.size();
            }
          }
          sim.schedule_after(cm.cqe_cost,
                             [self, rwr, len,
                              captured = std::move(captured)]() mutable {
            if (auto q = self.lock()) {
              q->complete_recv(Completion{rwr.wr_id, Opcode::kRecv,
                                          WcStatus::kSuccess, len, q->qpn_,
                                          std::move(captured)});
            }
          });
          // RC ack completes the sender's WR.
          sim.schedule_after(cm.ack_latency,
                             [s = in.sender, wr_id = in.sender_wr_id,
                              sig = in.sender_signaled] {
                               if (auto q = s.lock()) {
                                 q->complete_send(wr_id, Opcode::kSend,
                                                  WcStatus::kSuccess, sig);
                               }
                             });
        });
  }
}

void QueuePair::rnr_tick() {
  rnr_timer_armed_ = false;
  drain_inbound();
  if (inbound_.empty() || state_ == QpState::kError) return;
  auto& sim = dev_->simulator();
  const auto& cm = dev_->cost();
  InboundSend& head = inbound_.front();
  if (head.retries_left == 0) {
    // Receiver never provisioned a buffer (paper §II-A: "it is important
    // to allocate enough receive requests"). The connection breaks. The
    // head is popped first so set_error()'s NAK sweep of the remaining
    // parked senders cannot complete it a second time.
    const InboundSend failed = std::move(head);
    inbound_.pop_front();
    if (auto sender = failed.sender.lock()) {
      sim.schedule_after(cm.ack_latency, [sender, wr_id = failed.sender_wr_id] {
        sender->complete_send(wr_id, Opcode::kSend,
                              WcStatus::kRnrRetryExceeded, true);
      });
    }
    set_error();
    return;
  }
  --head.retries_left;
  rnr_timer_armed_ = true;
  auto self = weak_from_this();
  sim.schedule_after(cfg_.rnr_timeout_ns, [self] {
    if (auto qp = self.lock()) qp->rnr_tick();
  });
}

void QueuePair::on_write_arrival(std::uint32_t rkey, std::uint64_t remote_addr,
                                 FrameVec payload,
                                 std::weak_ptr<QueuePair> sender,
                                 std::uint64_t wr_id, bool signaled) {
  // One-sided writes always materialize into the target MR: the whole
  // point of RDMA WRITE is that the responder reads those bytes directly.
  auto& sim = dev_->simulator();
  const auto& cm = dev_->cost();
  const MemoryRegion* mr = pd_->check_remote(rkey, remote_addr,
                                             payload.total_size(),
                                             kAccessRemoteWrite);
  if (mr == nullptr) {
    // NAK: the requester learns, the responder application never does —
    // one of the one-sided security headaches from paper §III-C.
    sim.schedule_after(cm.ack_latency, [sender, wr_id] {
      if (auto q = sender.lock()) {
        q->complete_send(wr_id, Opcode::kRdmaWrite,
                         WcStatus::kRemoteAccessError, true);
      }
    });
    return;
  }
  const sim::Time done =
      dev_->nic_admit(sim.now(), cm.dma_time(payload.total_size()));
  std::uint8_t* dst = mr->data_at(remote_addr);
  sim.schedule_at(done, [dst, payload = std::move(payload), sender, wr_id,
                         signaled, &sim, &cm]() mutable {
    std::uint8_t* p = dst;
    for (const SharedBytes& s : payload) {
      std::memcpy(p, s.data(), s.size());
      p += s.size();
    }
    sim.schedule_after(cm.ack_latency, [sender, wr_id, signaled] {
      if (auto q = sender.lock()) {
        q->complete_send(wr_id, Opcode::kRdmaWrite, WcStatus::kSuccess,
                         signaled);
      }
    });
  });
}

void QueuePair::on_read_request(std::uint64_t remote_addr, std::uint32_t rkey,
                                std::uint32_t length,
                                std::weak_ptr<QueuePair> sender,
                                std::uint64_t wr_id) {
  auto& sim = dev_->simulator();
  const auto& cm = dev_->cost();
  const MemoryRegion* mr =
      pd_->check_remote(rkey, remote_addr, length, kAccessRemoteRead);
  if (mr == nullptr) {
    sim.schedule_after(cm.ack_latency, [sender, wr_id] {
      if (auto q = sender.lock()) {
        q->complete_send(wr_id, Opcode::kRdmaRead,
                         WcStatus::kRemoteAccessError, true);
      }
    });
    return;
  }
  // Responder NIC: turnaround + DMA read of the data, then the payload
  // travels back as a normal frame.
  const sim::Time done =
      dev_->nic_admit(sim.now(), cm.read_turnaround + cm.dma_time(length));
  const std::uint8_t* src = mr->data_at(remote_addr);
  Device* rdev = dev_;
  sim.schedule_at(done, [src, length, sender, wr_id, rdev]() {
    Bytes payload(src, src + length);
    auto q = sender.lock();
    if (q == nullptr) return;
    rdev->fabric().transmit(
        rdev->host(), q->device().host(), length,
        [sender, wr_id, payload = std::move(payload)](
            const net::FrameFault& fault) mutable {
          // Duplicate read responses carry an already-acked PSN: discard.
          if (fault.duplicate) {
            RUBIN_AUDIT_COUNT("verbs.duplicate_discarded", 1);
            return;
          }
          if (fault.corrupt && !payload.empty()) {
            payload[fault.corrupt_offset % payload.size()] ^=
                fault.corrupt_mask;
          }
          auto qp = sender.lock();
          if (qp == nullptr) return;
          qp->complete_read_response(wr_id, std::move(payload));
        });
  });
}

void QueuePair::complete_read_response(std::uint64_t wr_id, Bytes payload) {
  auto& sim = dev_->simulator();
  const auto& cm = dev_->cost();
  // Find the original WR's local SGE: we did not keep it — the payload
  // lands wherever the WR said. We re-validate and copy via the pending
  // read table.
  const auto it = pending_reads_.find(wr_id);
  if (it == pending_reads_.end()) return;
  const PendingRead pr = it->second;
  pending_reads_.erase(it);
  // Re-validate every SGE and resolve the scatter targets; the response
  // bytes fill the elements in order.
  std::array<std::uint8_t*, SgeList::kMaxSges> dsts{};
  bool protection_ok = true;
  for (std::size_t i = 0; i < pr.sg_list.size(); ++i) {
    const MemoryRegion* mr = pd_->check_local(pr.sg_list[i], /*need_write=*/true);
    if (mr == nullptr) {
      protection_ok = false;
      break;
    }
    dsts[i] = mr->data_at(pr.sg_list[i].addr);
  }
  if (!protection_ok || payload.size() > pr.sg_list.total_length()) {
    complete_send(wr_id, Opcode::kRdmaRead, WcStatus::kLocalProtectionError,
                  true);
    return;
  }
  const sim::Time done =
      dev_->nic_admit(sim.now(), cm.dma_time(payload.size()));
  auto self = weak_from_this();
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  sim.schedule_at(done, [self, dsts, pr, payload = std::move(payload), wr_id,
                         len, sig = pr.signaled, &cm, &sim]() mutable {
    const std::uint8_t* src = payload.data();
    std::size_t remaining = payload.size();
    for (std::size_t i = 0; i < pr.sg_list.size() && remaining > 0; ++i) {
      const std::size_t n =
          std::min<std::size_t>(remaining, pr.sg_list[i].length);
      std::memcpy(dsts[i], src, n);
      src += n;
      remaining -= n;
    }
    sim.schedule_after(cm.cqe_cost, [self, wr_id, len, sig] {
      if (auto q = self.lock()) {
        q->complete_send(wr_id, Opcode::kRdmaRead, WcStatus::kSuccess, sig,
                         len);
      }
    });
  });
}

void QueuePair::complete_send(std::uint64_t wr_id, Opcode op, WcStatus status,
                              bool signaled, std::uint32_t byte_len) {
  ++completed_ops_;
  reclaim_send_slot(signaled);
  if (signaled) {
    send_cq_->push(Completion{wr_id, op, status, byte_len, qpn_, {}});
  }
  if (status != WcStatus::kSuccess) set_error();
}

void QueuePair::complete_recv(const Completion& c) { recv_cq_->push(c); }

void QueuePair::reclaim_send_slot(bool signaled) {
  if (!signaled) {
    // Selective signaling: the slot is only reclaimed when the next
    // signaled WR completes (hardware semantics — an all-unsignaled
    // workload eventually fills the send queue).
    ++unreclaimed_unsignaled_;
    return;
  }
  const std::uint32_t reclaim =
      std::min(send_queue_used_, 1 + unreclaimed_unsignaled_);
  send_queue_used_ -= reclaim;
  unreclaimed_unsignaled_ = 0;
}

}  // namespace rubin::verbs
