// Shared receive queue — the ibv_srq analogue (RDMAvisor, PAPERS.md: the
// per-QP receive-state blowup is what makes raw RC unscalable at
// datacenter connection counts).
//
// Many QPs attach to one SRQ (QpConfig::srq). An inbound SEND on any
// attached QP consumes the *oldest* SRQ work request instead of a per-QP
// posted receive, so receive-buffer provisioning is shared: memory scales
// with the SRQ depth, not with connections × ring depth. Semantics follow
// the verbs spec:
//
//   * completion routing: the consumed WR completes on the *owning QP's*
//     receive CQ with that QP's qp_num — the SRQ has no CQ of its own;
//   * teardown: SRQ WRs are not flushed when one attached QP errors (they
//     belong to the queue until taken). A WR already taken by a QP that
//     dies before its DMA finishes is flush-completed on that QP's CQ;
//   * limit watermark: arm_limit(n) fires one low-watermark event when the
//     posted count drops below n after a take, then disarms
//     (IBV_EVENT_SRQ_LIMIT_REACHED semantics — consumers re-arm after
//     refilling);
//   * backpressure: with the SRQ drained, inbound SENDs park in arrival
//     order under the existing RNR machinery; a refill re-drains attached
//     QPs in attach order, deterministically.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "sim/task.hpp"
#include "verbs/types.hpp"

namespace rubin::verbs {

class Device;
class QueuePair;

struct SrqConfig {
  /// Capacity: posts beyond this return kQueueFull.
  std::uint32_t max_wr = 1024;
  /// Initial low watermark (0 = disarmed); see arm_limit().
  std::uint32_t limit = 0;
};

class SharedReceiveQueue {
 public:
  SharedReceiveQueue(const SharedReceiveQueue&) = delete;
  SharedReceiveQueue& operator=(const SharedReceiveQueue&) = delete;

  /// Posts receive WRs, charged like QueuePair::post_recv (same span
  /// contract). A refill wakes attached QPs with parked inbound messages.
  sim::Task<PostResult> post(std::span<const RecvWr> wrs);

  /// Setup-path variant: synchronous, no CPU charge (pre-posting pools at
  /// establishment, off the measured data path).
  PostResult post_now(std::span<const RecvWr> wrs);
  PostResult post_now(std::vector<RecvWr> wrs);

  /// Arms the low watermark: the first take() that leaves fewer than
  /// `watermark` WRs posted fires the limit handler once and disarms.
  void arm_limit(std::uint32_t watermark) noexcept { limit_ = watermark; }
  bool limit_armed() const noexcept { return limit_ > 0; }

  /// Handler for limit events, delivered through the event queue (never
  /// inline from the take path — wake order stays deterministic).
  void set_limit_handler(std::function<void()> handler) {
    limit_handler_ = std::move(handler);
  }

  std::uint32_t max_wr() const noexcept { return cfg_.max_wr; }
  std::uint32_t posted() const noexcept {
    return static_cast<std::uint32_t>(queue_.size());
  }
  /// Total WRs consumed by attached QPs over the SRQ's lifetime.
  std::uint64_t taken() const noexcept { return taken_; }
  /// Bytes of receive buffer described by currently-posted WRs — the
  /// shared receive state the scalability bench amortizes per connection.
  std::uint64_t receive_state_bytes() const noexcept { return posted_bytes_; }
  std::size_t attached_qps() const noexcept { return attached_.size(); }

 private:
  friend class Device;
  friend class QueuePair;

  SharedReceiveQueue(Device& dev, SrqConfig cfg) : dev_(&dev), cfg_(cfg) {}

  /// Consumes the oldest WR (caller checked posted() > 0). Fires the limit
  /// event when the armed watermark is crossed.
  RecvWr take();
  /// Registers a consumer QP (create_qp with cfg.srq set). Attach order is
  /// the re-drain order after a refill.
  void attach(const std::shared_ptr<QueuePair>& qp);
  /// Re-drains attached QPs with parked inbound messages (post paths).
  void redrain();

  Device* dev_;
  SrqConfig cfg_;
  std::deque<RecvWr> queue_;
  std::uint64_t posted_bytes_ = 0;
  std::uint64_t taken_ = 0;
  std::uint32_t limit_ = 0;
  std::function<void()> limit_handler_;
  std::vector<std::weak_ptr<QueuePair>> attached_;
};

}  // namespace rubin::verbs
