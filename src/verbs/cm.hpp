// Connection manager — the rdma_cm analogue.
//
// RDMA queue pairs do not "connect" like sockets: the two sides exchange
// QP numbers out of band and transition their QPs to connected state. The
// CM runs that rendezvous (REQ -> REP -> RTU over fabric control frames)
// and surfaces it as events:
//
//   listener side:  kConnectRequest  (a peer wants in; paper: OP_CONNECT)
//                   kEstablished     (handshake done;   paper: OP_ACCEPT)
//   client side:    kEstablished / kRejected
//   both sides:     kDisconnected
//
// Events go to a per-consumer sink function; RUBIN's event manager feeds
// them into its hybrid event queue next to completion events.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "net/fabric.hpp"
#include "verbs/device.hpp"

namespace rubin::verbs {

enum class CmEventType : std::uint8_t {
  kConnectRequest,
  kEstablished,
  kRejected,
  kDisconnected,
};

const char* to_string(CmEventType t) noexcept;

struct CmEvent {
  CmEventType type = CmEventType::kConnectRequest;
  /// CM-wide identifier of the connection this event concerns.
  std::uint64_t conn_id = 0;
  net::HostId peer_host = 0;
};

using CmSink = std::function<void(const CmEvent&)>;

class ConnectionManager;

/// Server-side rendezvous point bound to (host, port).
class CmListener {
 public:
  net::HostId host() const noexcept { return host_; }
  std::uint16_t port() const noexcept { return port_; }

  /// Completes a pending kConnectRequest with the QP the server allocated
  /// for it (receives should be pre-posted before calling). kEstablished
  /// is delivered to both sides when the handshake finishes.
  void accept(std::uint64_t conn_id, std::shared_ptr<QueuePair> qp);

  /// Declines a pending request; the client gets kRejected.
  void reject(std::uint64_t conn_id);

 private:
  friend class ConnectionManager;
  CmListener(ConnectionManager& cm, net::HostId host, std::uint16_t port,
             CmSink sink)
      : cm_(&cm), host_(host), port_(port), sink_(std::move(sink)) {}
  ConnectionManager* cm_;
  net::HostId host_;
  std::uint16_t port_;
  CmSink sink_;
};

class ConnectionManager {
 public:
  explicit ConnectionManager(net::Fabric& fabric) : fabric_(&fabric) {}
  ConnectionManager(const ConnectionManager&) = delete;
  ConnectionManager& operator=(const ConnectionManager&) = delete;

  /// Binds a listener; `sink` receives its events. Throws if taken.
  std::shared_ptr<CmListener> listen(net::HostId host, std::uint16_t port,
                                     CmSink sink);

  /// Starts a client-side connect of `qp` to (remote_host, port). Events
  /// for this attempt arrive at `sink`. Returns the connection id.
  std::uint64_t connect(std::shared_ptr<QueuePair> qp, net::HostId remote_host,
                        std::uint16_t port, CmSink sink);

  /// Tears a connection down: both QPs go to error, the peer gets
  /// kDisconnected. Idempotent.
  void disconnect(std::uint64_t conn_id);

 private:
  friend class CmListener;

  struct Conn {
    std::shared_ptr<QueuePair> client_qp;
    std::shared_ptr<QueuePair> server_qp;  // set at accept()
    CmSink client_sink;
    CmListener* listener = nullptr;
    bool established = false;
    bool closed = false;
  };

  void do_accept(std::uint64_t conn_id, std::shared_ptr<QueuePair> qp);
  void do_reject(std::uint64_t conn_id);
  /// Control-plane message: a small frame + one kernel crossing at each
  /// end (the CM mandatorily goes through the kernel, unlike the data
  /// path).
  void control(net::HostId src, net::HostId dst, sim::UniqueFunction action);

  net::Fabric* fabric_;
  std::map<std::pair<net::HostId, std::uint16_t>, std::weak_ptr<CmListener>>
      listeners_;
  std::map<std::uint64_t, Conn> conns_;
  std::uint64_t next_conn_ = 1;
};

}  // namespace rubin::verbs
