#include "verbs/cm.hpp"

#include <stdexcept>

namespace rubin::verbs {

const char* to_string(CmEventType t) noexcept {
  switch (t) {
    case CmEventType::kConnectRequest: return "connect-request";
    case CmEventType::kEstablished: return "established";
    case CmEventType::kRejected: return "rejected";
    case CmEventType::kDisconnected: return "disconnected";
  }
  return "?";
}

void CmListener::accept(std::uint64_t conn_id, std::shared_ptr<QueuePair> qp) {
  cm_->do_accept(conn_id, std::move(qp));
}

void CmListener::reject(std::uint64_t conn_id) { cm_->do_reject(conn_id); }

std::shared_ptr<CmListener> ConnectionManager::listen(net::HostId host,
                                                      std::uint16_t port,
                                                      CmSink sink) {
  const auto key = std::pair{host, port};
  if (auto it = listeners_.find(key);
      it != listeners_.end() && !it->second.expired()) {
    throw std::invalid_argument("ConnectionManager::listen: port taken");
  }
  auto listener = std::shared_ptr<CmListener>(
      new CmListener(*this, host, port, std::move(sink)));
  listeners_[key] = listener;
  return listener;
}

std::uint64_t ConnectionManager::connect(std::shared_ptr<QueuePair> qp,
                                         net::HostId remote_host,
                                         std::uint16_t port, CmSink sink) {
  const std::uint64_t conn_id = next_conn_++;
  const net::HostId src = qp->device().host();
  conns_[conn_id] = Conn{std::move(qp), nullptr, std::move(sink), nullptr,
                         false, false};

  // REQ: announce the connection attempt at the rendezvous point.
  control(src, remote_host, [this, conn_id, remote_host, port, src] {
    auto& conn = conns_.at(conn_id);
    const auto it = listeners_.find(std::pair{remote_host, port});
    auto listener = it == listeners_.end() ? nullptr : it->second.lock();
    if (listener == nullptr) {
      control(remote_host, src, [this, conn_id, remote_host] {
        auto& c = conns_.at(conn_id);
        c.closed = true;
        c.client_sink(CmEvent{CmEventType::kRejected, conn_id, remote_host});
      });
      return;
    }
    conn.listener = listener.get();
    listener->sink_(CmEvent{CmEventType::kConnectRequest, conn_id, src});
  });
  return conn_id;
}

void ConnectionManager::do_accept(std::uint64_t conn_id,
                                  std::shared_ptr<QueuePair> qp) {
  auto& conn = conns_.at(conn_id);
  if (conn.closed || conn.established) return;
  conn.server_qp = std::move(qp);

  // Wire the server QP to the client immediately …
  conn.server_qp->connect(conn.client_qp->device(), conn.client_qp->qp_num());

  const net::HostId server_host = conn.server_qp->device().host();
  const net::HostId client_host = conn.client_qp->device().host();
  // … then REP to the client, which wires its end and confirms with RTU.
  control(server_host, client_host, [this, conn_id, server_host, client_host] {
    auto& c = conns_.at(conn_id);
    if (c.closed) return;
    c.client_qp->connect(c.server_qp->device(), c.server_qp->qp_num());
    c.established = true;
    c.client_sink(CmEvent{CmEventType::kEstablished, conn_id, server_host});
    control(client_host, server_host, [this, conn_id, client_host] {
      auto& c2 = conns_.at(conn_id);
      if (c2.closed || c2.listener == nullptr) return;
      c2.listener->sink_(
          CmEvent{CmEventType::kEstablished, conn_id, client_host});
    });
  });
}

void ConnectionManager::do_reject(std::uint64_t conn_id) {
  auto& conn = conns_.at(conn_id);
  if (conn.closed || conn.established) return;
  conn.closed = true;
  const net::HostId client_host = conn.client_qp->device().host();
  const net::HostId server_host =
      conn.listener != nullptr ? conn.listener->host() : client_host;
  control(server_host, client_host, [this, conn_id, server_host] {
    auto& c = conns_.at(conn_id);
    c.client_sink(CmEvent{CmEventType::kRejected, conn_id, server_host});
  });
}

void ConnectionManager::disconnect(std::uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end() || it->second.closed) return;
  Conn& conn = it->second;
  conn.closed = true;
  if (conn.client_qp) conn.client_qp->set_error();
  if (conn.server_qp) conn.server_qp->set_error();
  if (!conn.established) return;

  // Tell both sides (the initiator finds out synchronously through its QP;
  // the event makes teardown symmetric for selector-driven code).
  const net::HostId client_host = conn.client_qp->device().host();
  const net::HostId server_host = conn.server_qp->device().host();
  control(client_host, server_host, [this, conn_id, client_host] {
    auto& c = conns_.at(conn_id);
    if (c.listener != nullptr) {
      c.listener->sink_(
          CmEvent{CmEventType::kDisconnected, conn_id, client_host});
    }
  });
  control(server_host, client_host, [this, conn_id, server_host] {
    auto& c = conns_.at(conn_id);
    c.client_sink(CmEvent{CmEventType::kDisconnected, conn_id, server_host});
  });
}

void ConnectionManager::control(net::HostId src, net::HostId dst,
                                sim::UniqueFunction action) {
  auto& sim = fabric_->simulator();
  const sim::Time kernel = fabric_->cost().kernel_crossing;
  // CM traffic traverses the kernel at both ends (rdma_cm is a kernel
  // service); data-path verbs do not.
  fabric_->transmit(src, dst, 64,
                    [&sim, kernel, action = std::move(action)]() mutable {
                      sim.schedule_after(kernel, std::move(action));
                    });
}

}  // namespace rubin::verbs
