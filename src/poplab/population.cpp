#include "poplab/population.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/audit.hpp"

namespace rubin::poplab {

namespace {

/// wr_id of inline request sends — nothing to release at completion.
constexpr std::uint64_t kInlineWr = ~0ULL;
/// Staging-slot wr_ids are offset by one: wr_id 0 is reserved for the
/// transport-retry watchdog's synthetic completion (same rule as the mux).
constexpr std::uint64_t kSlotBase = 1;

void put_u32(std::uint8_t* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void put_u16(std::uint8_t* p, std::uint16_t v) { std::memcpy(p, &v, 2); }
std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, 4);
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// ArrivalStream

ArrivalStream::ArrivalStream(const CohortSpec& spec, std::uint64_t seed,
                             sim::Time horizon)
    : spec_(spec),
      rng_(seed),
      ops_(spec.op_space, spec.zipf_theta),
      payload_(spec.payload_lo, spec.payload_hi, spec.payload_alpha),
      horizon_(horizon) {
  switch (spec_.arrival.kind) {
    case ArrivalSchedule::Kind::kSteady:
      peak_rps_ = spec_.arrival.base_rps;
      break;
    case ArrivalSchedule::Kind::kRamp:
    case ArrivalSchedule::Kind::kStep:
    case ArrivalSchedule::Kind::kBurst:
      peak_rps_ = std::max(spec_.arrival.base_rps, spec_.arrival.peak_rps);
      break;
  }
}

std::optional<Arrival> ArrivalStream::next() {
  if (peak_rps_ <= 0.0) return std::nullopt;
  // Non-homogeneous Poisson by thinning: candidate arrivals at the peak
  // rate, each accepted with probability rate_at/peak. Every candidate
  // consumes exactly two uniform draws, so the stream's draw sequence —
  // and therefore the schedule — is a pure function of (spec, seed).
  const double mean_gap_ns = 1e9 / peak_rps_;
  for (;;) {
    const auto gap = static_cast<sim::Time>(exponential(rng_, mean_gap_ns));
    elapsed_ += gap > 0 ? gap : 1;
    if (elapsed_ >= horizon_) return std::nullopt;
    const double accept = rng_.next_double() * peak_rps_;
    if (accept < spec_.arrival.rate_at(elapsed_)) break;
  }
  Arrival a;
  a.at = elapsed_;
  a.client = static_cast<std::uint32_t>(rng_.next_below(spec_.clients));
  a.op = static_cast<std::uint16_t>(ops_.sample(rng_));
  a.bytes = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(payload_.sample_size(rng_), 1ULL << 20));
  return a;
}

// ---------------------------------------------------------------------------
// Population

std::uint32_t Population::host_count(const PopulationSpec& spec,
                                     const PopulationConfig& cfg) {
  const std::uint32_t total = spec.total_clients();
  const std::uint32_t machines =
      (total + cfg.clients_per_host - 1) / cfg.clients_per_host;
  return machines + 1;
}

Population::Population(net::Fabric& fabric, PopulationSpec spec,
                       PopulationConfig cfg)
    : fabric_(&fabric),
      sim_(&fabric.simulator()),
      spec_(std::move(spec)),
      cfg_(cfg),
      cm_(fabric),
      all_connected_(*sim_) {
  if (spec_.cohorts.empty()) {
    throw std::invalid_argument("Population: spec has no cohorts");
  }
  const std::uint32_t total = spec_.total_clients();
  const std::uint32_t machines =
      (total + cfg_.clients_per_host - 1) / cfg_.clients_per_host;
  const std::size_t last_host = cfg_.first_client_host + machines - 1;
  if (cfg_.server_host >= fabric.host_count() ||
      last_host >= fabric.host_count()) {
    throw std::invalid_argument(
        "Population: fabric too small for the placement (see host_count)");
  }
  if (cfg_.inline_threshold > fabric.cost().max_inline) {
    throw std::invalid_argument(
        "Population: inline_threshold exceeds the device max_inline");
  }
  start_server();
  build_hosts();
}

Population::~Population() = default;

void Population::start_server() {
  server_dev_ = std::make_unique<verbs::Device>(*fabric_, cfg_.server_host);
  server_ctx_ = std::make_unique<nio::RubinContext>(*server_dev_, cm_);

  nio::MuxConfig mc;
  mc.use_srq = cfg_.use_srq;
  const std::uint32_t total = spec_.total_clients();
  // Cap the SRQ depth at half the per-QP baseline's aggregate ring space:
  // shared receive state stays strictly below the baseline at every
  // population size, which is the invariant the scalability bench gates.
  mc.srq_depth = std::min(
      cfg_.srq_depth, std::max(64u, total * cfg_.per_conn_recv / 2));
  mc.srq_limit = std::max(1u, std::min(cfg_.srq_limit, mc.srq_depth / 4));
  mc.refill_batch = std::max(16u, mc.srq_depth / 64);
  mc.per_conn_recv = cfg_.per_conn_recv;
  mc.buffer_size = cfg_.buffer_size;
  mc.send_pool_slots = cfg_.server_send_slots;
  mc.inline_threshold = cfg_.inline_threshold;
  mc.cq_depth =
      std::max<std::size_t>(8192, 2 * static_cast<std::size_t>(mc.srq_depth));
  mux_ = nio::MuxAcceptor::listen(*server_ctx_, cfg_.port, mc);
}

verbs::RecvWr Population::ack_wr(nio::BufferPool& pool,
                                 std::uint32_t slot) const {
  return verbs::RecvWr{
      slot, pool.sge(slot, static_cast<std::uint32_t>(cfg_.ack_slot_size)),
      /*capture_payload=*/true};
}

void Population::build_hosts() {
  const std::uint32_t total = spec_.total_clients();
  const std::uint32_t machines =
      (total + cfg_.clients_per_host - 1) / cfg_.clients_per_host;

  hosts_.reserve(machines);
  qpn_to_client_.resize(machines);
  for (std::uint32_t h = 0; h < machines; ++h) {
    auto host = std::make_unique<ClientHost>();
    host->dev = std::make_unique<verbs::Device>(
        *fabric_, static_cast<net::HostId>(cfg_.first_client_host + h));
    host->chan = host->dev->create_channel();
    // Same capping rule as the server mux: the host's ack SRQ never
    // provisions more than half the per-QP aggregate ring space for the
    // clients it actually carries, so the client-side memory invariant
    // holds at every population size too.
    const std::uint32_t host_clients = std::min(
        cfg_.clients_per_host, total - h * cfg_.clients_per_host);
    const std::uint32_t srq_depth = std::min(
        cfg_.client_srq_depth, std::max(32u, host_clients * cfg_.window / 2));
    const std::size_t cq_depth =
        2 * static_cast<std::size_t>(cfg_.clients_per_host) * cfg_.window +
        srq_depth;
    host->scq = host->dev->create_cq(cq_depth, host->chan);
    host->rcq = host->dev->create_cq(cq_depth, host->chan);
    host->send_pool = std::make_unique<nio::BufferPool>(
        host->pd, cfg_.client_send_slots, cfg_.buffer_size, 0u);
    if (cfg_.use_srq) {
      host->srq = host->dev->create_srq(verbs::SrqConfig{srq_depth, 0});
      host->ack_pool = std::make_unique<nio::BufferPool>(
          host->pd, srq_depth, cfg_.ack_slot_size, verbs::kAccessLocalWrite);
      std::vector<verbs::RecvWr> wrs;
      wrs.reserve(srq_depth);
      for (std::uint32_t slot = 0; slot < srq_depth; ++slot) {
        wrs.push_back(ack_wr(*host->ack_pool, slot));
      }
      (void)host->srq->post_now(std::move(wrs));
    }
    host->chan->set_sink(
        [this, h](verbs::CompletionQueue*) { pump_host(h); });
    host->scq->req_notify();
    host->rcq->req_notify();
    hosts_.push_back(std::move(host));
  }

  clients_.reserve(total);
  cohorts_.reserve(spec_.cohorts.size());
  std::uint32_t next = 0;
  for (const CohortSpec& cspec : spec_.cohorts) {
    ClientCohort cs;
    cs.spec = cspec;
    cs.base = next;
    for (std::uint32_t i = 0; i < cspec.clients; ++i) {
      const std::uint32_t gidx = next + i;
      const std::uint32_t h = gidx / cfg_.clients_per_host;
      ClientHost& host = *hosts_[h];

      verbs::QpConfig qc;
      qc.max_send_wr = cfg_.window;
      qc.max_recv_wr = cfg_.window;
      qc.max_inline = static_cast<std::uint32_t>(cfg_.inline_threshold);
      if (cfg_.use_srq) qc.srq = host.srq;
      Client c;
      c.qp = host.dev->create_qp(host.pd, *host.scq, *host.rcq, qc);
      c.host = h;
      c.cohort = static_cast<std::uint16_t>(cohorts_.size());
      if (!cfg_.use_srq) {
        c.ack_ring = std::make_unique<nio::BufferPool>(
            host.pd, cfg_.window, cfg_.ack_slot_size,
            verbs::kAccessLocalWrite);
        std::vector<verbs::RecvWr> wrs;
        wrs.reserve(cfg_.window);
        for (std::uint32_t slot = 0; slot < cfg_.window; ++slot) {
          wrs.push_back(ack_wr(*c.ack_ring, slot));
        }
        (void)c.qp->post_recv_now(std::move(wrs));
      }
      qpn_to_client_[h][c.qp->qp_num()] = gidx;
      clients_.push_back(std::move(c));
    }
    next += cspec.clients;
    cohorts_.push_back(std::move(cs));
  }
}

void Population::connect_clients() {
  // The whole population dials at once — the connection storm is part of
  // what the subsystem has to absorb. The schedule clock starts only when
  // every attempt has resolved (established or rejected).
  for (std::uint32_t gidx = 0; gidx < clients_.size(); ++gidx) {
    Client& c = clients_[gidx];
    cm_.connect(c.qp, cfg_.server_host, cfg_.port,
                [this, gidx](const verbs::CmEvent& e) {
                  Client& cl = clients_[gidx];
                  switch (e.type) {
                    case verbs::CmEventType::kEstablished:
                      cl.established = true;
                      if (++established_ == clients_.size()) {
                        all_connected_.set();
                      }
                      break;
                    case verbs::CmEventType::kRejected:
                      cl.open = false;
                      if (++established_ == clients_.size()) {
                        all_connected_.set();
                      }
                      break;
                    case verbs::CmEventType::kDisconnected:
                      cl.open = false;
                      break;
                    case verbs::CmEventType::kConnectRequest:
                      break;
                  }
                });
  }
}

sim::Task<void> Population::serve() {
  // The ack is the request's own header slice — zero-copy (O(1) refcount
  // bump) and always inside the inline threshold. A backpressured reply
  // (returns 0) is simply a lost ack; the client's timeout absorbs it.
  for (;;) {
    nio::MuxMessage msg = co_await mux_->read();
    if (msg.payload.size() < kHeaderBytes) continue;
    ++server_requests_;
    (void)co_await mux_->reply(msg.conn, msg.payload.slice(0, kHeaderBytes));
  }
}

sim::Task<void> Population::run() {
  connect_started_ = sim_->now();
  connect_clients();
  co_await all_connected_.wait();
  connect_done_ = sim_->now();
  t0_ = connect_done_;

  sim_->spawn(serve());
  for (std::size_t i = 0; i < cohorts_.size(); ++i) {
    sim_->spawn(drive_cohort(i));
  }

  sim::Time max_timeout = 0;
  for (const ClientCohort& cs : cohorts_) {
    max_timeout = std::max(max_timeout, cs.spec.timeout);
  }
  co_await sim_->sleep(spec_.duration + max_timeout + cfg_.drain_grace);
}

sim::Task<void> Population::drive_cohort(std::size_t idx) {
  ClientCohort& cs = cohorts_[idx];
  if (cs.spec.start >= spec_.duration) co_return;
  const sim::Time cohort_t0 = t0_ + cs.spec.start;
  if (cohort_t0 > sim_->now()) co_await sim_->sleep(cohort_t0 - sim_->now());

  // Per-cohort seed derivation is part of the pinned determinism surface
  // (determinism_test): golden-ratio stride over the population seed.
  ArrivalStream stream(cs.spec,
                       spec_.seed + 0x9E3779B97F4A7C15ULL * (idx + 1),
                       spec_.duration - cs.spec.start);
  while (auto a = stream.next()) {
    // Absolute target instants: posting charges never accumulate into
    // schedule drift (open-loop means the schedule owns the clock).
    const sim::Time target = cohort_t0 + a->at;
    if (target > sim_->now()) co_await sim_->sleep(target - sim_->now());
    ++cs.arrivals;
    RUBIN_AUDIT_COUNT("poplab.arrivals", 1);
    co_await issue(idx, *a);
  }
}

void Population::drop(ClientCohort& cs) {
  ++cs.drops;
  // Shed load is lost load: drops ride the timeout audit counter (the
  // report still separates the two).
  RUBIN_AUDIT_COUNT("poplab.timeouts", 1);
}

sim::Task<void> Population::issue(std::size_t cohort_idx, const Arrival& a) {
  ClientCohort& cs = cohorts_[cohort_idx];
  const std::uint32_t gidx = cs.base + a.client;
  Client& c = clients_[gidx];
  if (!c.open || !c.established ||
      c.pending.size() >= cfg_.window) {
    drop(cs);
    co_return;
  }
  ClientHost& host = *hosts_[c.host];

  const std::size_t n = std::min<std::size_t>(
      std::max<std::size_t>(a.bytes, kHeaderBytes), cfg_.buffer_size);
  const std::uint32_t req_id = c.next_req++;
  SharedBytes payload = SharedBytes::allocate(n);
  std::uint8_t* p = payload.mutable_data();
  std::memset(p, 0, n);
  put_u32(p, gidx);
  put_u32(p + 4, req_id);
  put_u16(p + 8, static_cast<std::uint16_t>(cohort_idx));
  put_u16(p + 10, a.op);

  verbs::SendWr wr;
  wr.opcode = verbs::Opcode::kSend;
  wr.signaled = true;
  if (n <= cfg_.inline_threshold) {
    wr.inline_data = true;
    wr.wr_id = kInlineWr;
    wr.sg_list = verbs::Sge{reinterpret_cast<std::uint64_t>(payload.data()),
                            static_cast<std::uint32_t>(n), 0};
  } else {
    // Staged through the host's shared request pool; the refcounted
    // payload rides the WR, so the slot only donates registered address
    // space (same zero-copy shape as the mux reply path).
    const auto slot = host.send_pool->acquire();
    if (!slot) {
      drop(cs);
      co_return;
    }
    wr.wr_id = kSlotBase + *slot;
    wr.sg_list = host.send_pool->sge(*slot, static_cast<std::uint32_t>(n));
  }
  wr.shared_payload.append(payload);

  const std::uint64_t posted_id = wr.wr_id;
  const auto result = co_await c.qp->post_send_one(std::move(wr));
  if (result != verbs::PostResult::kOk) {
    if (posted_id != kInlineWr) {
      host.send_pool->release(static_cast<std::uint32_t>(posted_id - kSlotBase));
    }
    drop(cs);
    co_return;
  }
  ++cs.sent;
  c.pending.push_back(PendingReq{req_id, sim_->now()});
  sim_->schedule_after(cs.spec.timeout,
                       [this, gidx, req_id] { expire(gidx, req_id); });
}

void Population::on_ack(std::uint32_t client_idx, std::uint32_t req_id) {
  Client& c = clients_[client_idx];
  for (auto it = c.pending.begin(); it != c.pending.end(); ++it) {
    if (it->req_id == req_id) {
      ClientCohort& cs = cohorts_[c.cohort];
      cs.latency.add(static_cast<double>(sim_->now() - it->sent_at) / 1e3);
      ++cs.completions;
      RUBIN_AUDIT_COUNT("poplab.completions", 1);
      c.pending.erase(it);
      return;
    }
  }
  // Ack for a request that already expired: the timeout was charged, the
  // late ack is dropped on the floor.
}

void Population::expire(std::uint32_t client_idx, std::uint32_t req_id) {
  Client& c = clients_[client_idx];
  for (auto it = c.pending.begin(); it != c.pending.end(); ++it) {
    if (it->req_id == req_id) {
      ++cohorts_[c.cohort].timeouts;
      RUBIN_AUDIT_COUNT("poplab.timeouts", 1);
      c.pending.erase(it);
      return;
    }
  }
}

void Population::pump_host(std::size_t h) {
  ClientHost& host = *hosts_[h];
  auto& qpn_map = qpn_to_client_[h];

  for (;;) {
    const auto cs = host.scq->poll(64);
    if (cs.empty()) break;
    for (const verbs::Completion& c : cs) {
      if (c.wr_id != kInlineWr && c.wr_id >= kSlotBase) {
        host.send_pool->release(static_cast<std::uint32_t>(c.wr_id - kSlotBase));
      }
      if (c.status != verbs::WcStatus::kSuccess) {
        const auto it = qpn_map.find(c.qp_num);
        if (it != qpn_map.end()) clients_[it->second].open = false;
      }
    }
  }

  std::vector<std::uint32_t> ack_slots;
  for (;;) {
    const auto cs = host.rcq->poll(64);
    if (cs.empty()) break;
    for (const verbs::Completion& c : cs) {
      if (host.srq != nullptr) {
        // SRQ ack slots are shared property — reclaimed even from flushed
        // completions of dead clients. Per-QP rings die with their QP.
        ack_slots.push_back(static_cast<std::uint32_t>(c.wr_id));
      }
      if (c.status != verbs::WcStatus::kSuccess) continue;
      const auto it = qpn_map.find(c.qp_num);
      if (it == qpn_map.end()) continue;
      if (c.payload.size() >= kHeaderBytes) {
        on_ack(it->second, get_u32(c.payload.data() + 4));
      }
      if (host.srq == nullptr) {
        Client& cl = clients_[it->second];
        if (cl.open && cl.qp->state() == verbs::QpState::kReadyToSend) {
          const verbs::RecvWr wr =
              ack_wr(*cl.ack_ring, static_cast<std::uint32_t>(c.wr_id));
          (void)cl.qp->post_recv_now(std::span<const verbs::RecvWr>(&wr, 1));
        }
      }
    }
  }
  if (host.srq != nullptr && !ack_slots.empty()) {
    std::vector<verbs::RecvWr> wrs;
    wrs.reserve(ack_slots.size());
    for (const std::uint32_t slot : ack_slots) {
      wrs.push_back(ack_wr(*host.ack_pool, slot));
    }
    (void)host.srq->post_now(std::move(wrs));
  }
  RUBIN_AUDIT_ASSERT(
      "poplab", !host.scq->overflowed() && !host.rcq->overflowed(),
      "client-host CQ overflowed — size cq_depth for the population burst");
  host.scq->req_notify();
  host.rcq->req_notify();
}

std::uint64_t Population::client_receive_state_bytes() const noexcept {
  if (cfg_.use_srq) {
    std::uint64_t bytes = 0;
    for (const auto& host : hosts_) {
      bytes += static_cast<std::uint64_t>(host->ack_pool->count()) *
               host->ack_pool->slot_size();
    }
    return bytes;
  }
  return static_cast<std::uint64_t>(clients_.size()) * cfg_.window *
         cfg_.ack_slot_size;
}

PopulationReport Population::report() const {
  PopulationReport r;
  r.clients = spec_.total_clients();
  r.established = established_;
  r.connect_span = connect_done_ - connect_started_;
  r.server_receive_state_bytes = mux_->receive_state_bytes();
  r.client_receive_state_bytes = client_receive_state_bytes();
  if (mux_->connection_count() > 0) {
    r.server_recv_bytes_per_conn =
        static_cast<double>(r.server_receive_state_bytes) /
        static_cast<double>(mux_->connection_count());
  }
  for (const ClientCohort& cs : cohorts_) {
    CohortReport c;
    c.name = cs.spec.name;
    c.arrivals = cs.arrivals;
    c.sent = cs.sent;
    c.completions = cs.completions;
    c.timeouts = cs.timeouts;
    c.drops = cs.drops;
    if (cs.latency.count() > 0) {
      c.mean_us = cs.latency.mean();
      c.p50_us = cs.latency.percentile(0.50);
      c.p99_us = cs.latency.percentile(0.99);
      c.max_us = cs.latency.max();
    }
    r.arrivals += c.arrivals;
    r.sent += c.sent;
    r.completions += c.completions;
    r.timeouts += c.timeouts;
    r.drops += c.drops;
    r.cohorts.push_back(std::move(c));
  }
  if (spec_.duration > 0) {
    r.throughput_rps = static_cast<double>(r.completions) /
                       (static_cast<double>(spec_.duration) / 1e9);
  }
  return r;
}

}  // namespace rubin::poplab
