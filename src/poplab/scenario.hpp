// Declarative population scenarios — workloads as data, not code
// (ROADMAP: the baykaner end-to-end YAML files are the shape; this is the
// repo-native line-oriented equivalent, parsed at run time so new
// populations need no recompile).
//
// A `.pop` file declares one population: a seed, a duration, and cohorts.
// Each cohort is an open-loop client group with its own arrival-rate
// schedule (steady / ramp / step / burst), Zipf op mix, bounded-Pareto
// payload sizes, and request timeout. Grammar (one directive per line,
// '#' comments, cohort blocks closed by `end`):
//
//   population <name>
//   seed <u64>
//   duration_ms <float>
//   cohort <name>
//     clients <u32>
//     start_ms <float>
//     arrival steady <rps>
//     arrival ramp <from_rps> <to_rps> <over_ms>
//     arrival step <base_rps> <at_ms> <to_rps>
//     arrival burst <base_rps> <burst_rps> <period_ms> <burst_ms>
//     ops <op_space> zipf <theta>
//     payload pareto <lo_bytes> <hi_bytes> <alpha>
//     payload fixed <bytes>
//     timeout_ms <float>
//   end
//
// Rates are cohort-aggregate requests per second.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace rubin::poplab {

/// Time-varying cohort arrival rate (requests/second, cohort-aggregate).
struct ArrivalSchedule {
  enum class Kind : std::uint8_t { kSteady, kRamp, kStep, kBurst };
  Kind kind = Kind::kSteady;
  double base_rps = 100.0;
  /// Ramp/step target; burst peak.
  double peak_rps = 0.0;
  /// Ramp length, step instant, or burst period (relative to cohort start).
  sim::Time at = 0;
  /// Burst only: how long each burst lasts within the period.
  sim::Time width = 0;

  /// Instantaneous rate `elapsed` nanoseconds after the cohort started.
  double rate_at(sim::Time elapsed) const noexcept;
};

struct CohortSpec {
  std::string name;
  std::uint32_t clients = 1;
  sim::Time start = 0;  // relative to population start
  ArrivalSchedule arrival;
  /// Op mix: Zipf over {0, …, op_space-1} with exponent zipf_theta.
  std::uint32_t op_space = 16;
  double zipf_theta = 0.99;
  /// Payload bytes: bounded Pareto [payload_lo, payload_hi], shape alpha.
  /// payload_lo == payload_hi means fixed-size.
  double payload_lo = 64.0;
  double payload_hi = 1024.0;
  double payload_alpha = 1.3;
  sim::Time timeout = sim::milliseconds(20);
};

struct PopulationSpec {
  std::string name = "population";
  std::uint64_t seed = 1;
  sim::Time duration = sim::milliseconds(100);
  std::vector<CohortSpec> cohorts;

  std::uint32_t total_clients() const noexcept;

  /// Parses scenario text; throws std::invalid_argument naming the line
  /// on any malformed directive.
  static PopulationSpec parse(std::string_view text);
  /// Reads and parses a `.pop` file; throws on I/O or parse errors.
  static PopulationSpec load(const std::string& path);
};

}  // namespace rubin::poplab
