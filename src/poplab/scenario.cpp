#include "poplab/scenario.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace rubin::poplab {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::invalid_argument("scenario line " + std::to_string(line_no) +
                              ": " + what);
}

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i >= line.size() || line[i] == '#') break;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
           line[i] != '#') {
      ++i;
    }
    out.emplace_back(line.substr(start, i - start));
  }
  return out;
}

double parse_double(const std::string& tok, std::size_t line_no) {
  std::size_t pos = 0;
  double v = 0.0;
  try {
    v = std::stod(tok, &pos);
  } catch (const std::exception&) {
    fail(line_no, "expected a number, got '" + tok + "'");
  }
  if (pos != tok.size()) fail(line_no, "trailing junk in number '" + tok + "'");
  return v;
}

std::uint64_t parse_u64(const std::string& tok, std::size_t line_no) {
  std::size_t pos = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(tok, &pos);
  } catch (const std::exception&) {
    fail(line_no, "expected an integer, got '" + tok + "'");
  }
  if (pos != tok.size()) fail(line_no, "trailing junk in integer '" + tok + "'");
  return static_cast<std::uint64_t>(v);
}

sim::Time ms_to_time(double ms, std::size_t line_no) {
  if (ms < 0.0) fail(line_no, "negative duration");
  return static_cast<sim::Time>(ms * 1e6);
}

void expect_args(const std::vector<std::string>& tok, std::size_t n,
                 std::size_t line_no) {
  if (tok.size() != n) {
    fail(line_no, "'" + tok[0] + "' takes " + std::to_string(n - 1) +
                      " argument(s), got " + std::to_string(tok.size() - 1));
  }
}

}  // namespace

double ArrivalSchedule::rate_at(sim::Time elapsed) const noexcept {
  switch (kind) {
    case Kind::kSteady:
      return base_rps;
    case Kind::kRamp: {
      if (at <= 0 || elapsed >= at) return peak_rps;
      if (elapsed <= 0) return base_rps;
      const double frac =
          static_cast<double>(elapsed) / static_cast<double>(at);
      return base_rps + (peak_rps - base_rps) * frac;
    }
    case Kind::kStep:
      return elapsed >= at ? peak_rps : base_rps;
    case Kind::kBurst: {
      if (at <= 0) return base_rps;
      const sim::Time phase = elapsed % at;
      return phase < width ? peak_rps : base_rps;
    }
  }
  return base_rps;
}

std::uint32_t PopulationSpec::total_clients() const noexcept {
  std::uint32_t total = 0;
  for (const auto& c : cohorts) total += c.clients;
  return total;
}

PopulationSpec PopulationSpec::parse(std::string_view text) {
  PopulationSpec spec;
  CohortSpec cohort;
  bool in_cohort = false;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                       : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    const std::vector<std::string> tok = tokenize(line);
    if (tok.empty()) continue;
    const std::string& kw = tok[0];

    if (!in_cohort) {
      if (kw == "population") {
        expect_args(tok, 2, line_no);
        spec.name = tok[1];
      } else if (kw == "seed") {
        expect_args(tok, 2, line_no);
        spec.seed = parse_u64(tok[1], line_no);
      } else if (kw == "duration_ms") {
        expect_args(tok, 2, line_no);
        spec.duration = ms_to_time(parse_double(tok[1], line_no), line_no);
      } else if (kw == "cohort") {
        expect_args(tok, 2, line_no);
        cohort = CohortSpec{};
        cohort.name = tok[1];
        in_cohort = true;
      } else {
        fail(line_no, "unknown directive '" + kw + "'");
      }
      continue;
    }

    if (kw == "end") {
      expect_args(tok, 1, line_no);
      if (cohort.clients == 0) fail(line_no, "cohort has zero clients");
      if (cohort.payload_lo > cohort.payload_hi) {
        fail(line_no, "payload lo exceeds hi");
      }
      spec.cohorts.push_back(cohort);
      in_cohort = false;
    } else if (kw == "clients") {
      expect_args(tok, 2, line_no);
      cohort.clients = static_cast<std::uint32_t>(parse_u64(tok[1], line_no));
    } else if (kw == "start_ms") {
      expect_args(tok, 2, line_no);
      cohort.start = ms_to_time(parse_double(tok[1], line_no), line_no);
    } else if (kw == "arrival") {
      if (tok.size() < 2) fail(line_no, "'arrival' needs a schedule kind");
      const std::string& kind = tok[1];
      auto& a = cohort.arrival;
      if (kind == "steady") {
        expect_args(tok, 3, line_no);
        a.kind = ArrivalSchedule::Kind::kSteady;
        a.base_rps = parse_double(tok[2], line_no);
      } else if (kind == "ramp") {
        expect_args(tok, 5, line_no);
        a.kind = ArrivalSchedule::Kind::kRamp;
        a.base_rps = parse_double(tok[2], line_no);
        a.peak_rps = parse_double(tok[3], line_no);
        a.at = ms_to_time(parse_double(tok[4], line_no), line_no);
      } else if (kind == "step") {
        expect_args(tok, 5, line_no);
        a.kind = ArrivalSchedule::Kind::kStep;
        a.base_rps = parse_double(tok[2], line_no);
        a.at = ms_to_time(parse_double(tok[3], line_no), line_no);
        a.peak_rps = parse_double(tok[4], line_no);
      } else if (kind == "burst") {
        expect_args(tok, 6, line_no);
        a.kind = ArrivalSchedule::Kind::kBurst;
        a.base_rps = parse_double(tok[2], line_no);
        a.peak_rps = parse_double(tok[3], line_no);
        a.at = ms_to_time(parse_double(tok[4], line_no), line_no);
        a.width = ms_to_time(parse_double(tok[5], line_no), line_no);
        if (a.width > a.at) fail(line_no, "burst width exceeds period");
      } else {
        fail(line_no, "unknown arrival kind '" + kind + "'");
      }
    } else if (kw == "ops") {
      expect_args(tok, 4, line_no);
      if (tok[2] != "zipf") fail(line_no, "only 'ops <n> zipf <theta>'");
      cohort.op_space = static_cast<std::uint32_t>(parse_u64(tok[1], line_no));
      if (cohort.op_space == 0) fail(line_no, "empty op space");
      cohort.zipf_theta = parse_double(tok[3], line_no);
    } else if (kw == "payload") {
      if (tok.size() < 2) fail(line_no, "'payload' needs a distribution");
      if (tok[1] == "pareto") {
        expect_args(tok, 5, line_no);
        cohort.payload_lo = parse_double(tok[2], line_no);
        cohort.payload_hi = parse_double(tok[3], line_no);
        cohort.payload_alpha = parse_double(tok[4], line_no);
        if (cohort.payload_lo <= 0.0) fail(line_no, "payload lo must be > 0");
      } else if (tok[1] == "fixed") {
        expect_args(tok, 3, line_no);
        cohort.payload_lo = parse_double(tok[2], line_no);
        cohort.payload_hi = cohort.payload_lo;
        if (cohort.payload_lo <= 0.0) fail(line_no, "payload must be > 0");
      } else {
        fail(line_no, "unknown payload distribution '" + tok[1] + "'");
      }
    } else if (kw == "timeout_ms") {
      expect_args(tok, 2, line_no);
      cohort.timeout = ms_to_time(parse_double(tok[1], line_no), line_no);
    } else {
      fail(line_no, "unknown cohort directive '" + kw + "'");
    }
  }

  if (in_cohort) fail(line_no, "unterminated cohort '" + cohort.name + "'");
  if (spec.cohorts.empty()) fail(line_no, "scenario declares no cohorts");
  return spec;
}

PopulationSpec PopulationSpec::load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::invalid_argument("cannot open scenario file: " + path);
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return parse(text);
}

}  // namespace rubin::poplab
