#include "rubin/selector.hpp"

#include <string>

#include "common/audit.hpp"

namespace rubin::nio {

RdmaSelector::RdmaSelector(RubinContext& ctx)
    : ctx_(&ctx), em_(ctx.simulator()) {}

RdmaSelector::~RdmaSelector() {
  for (auto& key : keys_) {
    if (key->channel_) key->channel_->selector_notify_ = nullptr;
    if (key->server_) key->server_->selector_notify_ = nullptr;
  }
}

RdmaSelectionKey* RdmaSelector::register_channel(
    std::shared_ptr<RdmaChannel> channel, std::uint32_t interest,
    std::uint64_t attachment) {
  auto key = std::make_unique<RdmaSelectionKey>();
  key->channel_ = std::move(channel);
  key->channel_id_ = key->channel_->id();
  key->interest_ = interest;
  key->attachment_ = attachment;
  RUBIN_AUDIT_ASSERT("selector", find_key(key->channel_id_) == nullptr,
                     "channel " + std::to_string(key->channel_id_) +
                         " registered twice with the same selector");
  // Channel events (CM + completions) flow into the hybrid queue tagged
  // with the connection id the selector will match on (Fig. 2, step 4).
  const std::uint64_t id = key->channel_id_;
  key->channel_->selector_notify_ = [this, id] {
    em_.push(EventManager::HybridEvent{
        EventManager::HybridEvent::Source::kCompletion, id});
  };
  keys_.push_back(std::move(key));
  em_.wake_.set();  // freshly registered channels may already be ready
  return keys_.back().get();
}

RdmaSelectionKey* RdmaSelector::register_server(
    std::shared_ptr<RdmaServerChannel> server, std::uint32_t interest,
    std::uint64_t attachment) {
  auto key = std::make_unique<RdmaSelectionKey>();
  key->server_ = std::move(server);
  key->channel_id_ = key->server_->id();
  key->interest_ = interest;
  key->attachment_ = attachment;
  RUBIN_AUDIT_ASSERT("selector", find_key(key->channel_id_) == nullptr,
                     "server channel " + std::to_string(key->channel_id_) +
                         " registered twice with the same selector");
  const std::uint64_t id = key->channel_id_;
  key->server_->selector_notify_ = [this, id] {
    em_.push(EventManager::HybridEvent{
        EventManager::HybridEvent::Source::kConnection, id});
  };
  keys_.push_back(std::move(key));
  em_.wake_.set();
  return keys_.back().get();
}

std::uint32_t RdmaSelector::current_ready(RdmaSelectionKey& key) const {
  std::uint32_t ready = 0;
  if (key.server_) {
    if (key.server_->pending_requests() > 0) ready |= kOpConnect;
    if (key.server_->established_count() > 0) ready |= kOpAccept;
    return ready;
  }
  RdmaChannel& ch = *key.channel_;
  if (!key.accept_fired_ && ch.state() != RdmaChannel::State::kConnecting) {
    ready |= kOpAccept;  // connection attempt resolved (possibly: failed)
  }
  if (ch.readable_messages() > 0 || ch.state() == RdmaChannel::State::kClosed) {
    ready |= kOpReceive;
  }
  if (ch.writable()) ready |= kOpSend;
  return ready;
}

void RdmaSelector::sweep_cancelled() {
  std::erase_if(keys_, [](const std::unique_ptr<RdmaSelectionKey>& key) {
    if (!key->cancelled_) return false;
    if (key->channel_) key->channel_->selector_notify_ = nullptr;
    if (key->server_) key->server_->selector_notify_ = nullptr;
    return true;
  });
}

sim::Task<std::size_t> RdmaSelector::select(sim::Time timeout) {
  auto& sim = ctx_->simulator();
  const auto& cost = ctx_->cost();
  co_await sim.sleep(cost.rubin_select_entry);
  const sim::Time deadline = timeout >= 0 ? sim.now() + timeout : -1;

  for (;;) {
    em_.wake_.reset();
    // Dispatch the hybrid event queue (Fig. 2, step 5): each event is
    // matched against the registered channels by comparing ids. The
    // matching itself is what costs; readiness is then recomputed from
    // channel state, which keeps semantics level-triggered like Java NIO.
    const std::size_t n_events = em_.queue_.size();
    em_.queue_.clear();
    events_dispatched_ += n_events;
    if (n_events > 0) {
      co_await sim.sleep(static_cast<sim::Time>(n_events) *
                         cost.rubin_event_dispatch);
    }

    sweep_cancelled();
    selected_.clear();
    for (auto& key : keys_) {
      // sweep_cancelled() ran just above; a cancelled key surviving into
      // the scan would let select() report (and the app operate on) a key
      // whose channel may already be torn down.
      RUBIN_AUDIT_ASSERT("selector", !key->cancelled_,
                         "cancelled key survived sweep into the ready scan");
      const std::uint32_t ready = key->interest_ & current_ready(*key);
      if (ready != 0) {
        key->ready_ = ready;
        RUBIN_AUDIT_ASSERT("selector", (key->ready_ & ~key->interest_) == 0,
                           "ready set escapes the interest set");
        if (ready & kOpAccept && key->channel_) key->accept_fired_ = true;
        selected_.push_back(key.get());
      }
    }
    if (!selected_.empty()) co_return selected_.size();
    if (wakeup_pending_) {
      wakeup_pending_ = false;
      co_return 0;
    }
    if (deadline >= 0 && sim.now() >= deadline) co_return 0;

    sim::TimerId tid = 0;
    bool have_timer = false;
    if (deadline >= 0) {
      tid = sim.schedule_after(deadline - sim.now(), [this] { em_.wake_.set(); });
      have_timer = true;
    }
    co_await em_.wake_.wait();
    if (have_timer) sim.cancel(tid);
    co_await sim.sleep(cost.thread_wakeup);  // the selector thread parked
  }
}

}  // namespace rubin::nio
