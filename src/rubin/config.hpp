// RUBIN channel configuration: the tunables behind the paper's §IV
// optimizations. "This abstraction is flexible because the number of WRs
// as well as the size of buffers can be independently specified, thereby
// allowing for the versatility needed by BFT protocols."
#pragma once

#include <cstddef>
#include <cstdint>

namespace rubin::nio {

/// The transport primitives a frame can travel by (paper §II/III: inline
/// WQE, two-sided send/receive, one-sided write into a mailbox ring, and
/// responder-driven read-drain).
enum class TransportKind : std::uint8_t {
  kInline,
  kSendRecv,
  kWrite,
  kReadDrain,
};

/// Per-channel transport policy. The default (kFixed) reproduces every
/// pre-existing configuration bit-identically: the channel uses exactly
/// the primitive the config names and the selector never runs. kAdaptive
/// turns on the per-frame selector (transport_select.hpp), which picks the
/// cheapest primitive from the cost model's crossover constants.
struct TransportPolicy {
  enum class Mode : std::uint8_t { kFixed, kAdaptive };
  Mode mode = Mode::kFixed;
  /// The primitive used under kFixed (ignored under kAdaptive).
  TransportKind fixed = TransportKind::kSendRecv;
};

struct ChannelConfig {
  /// Buffers (== work requests) per direction. Receives are pre-posted in
  /// full at channel creation — under-provisioning shows up as RNR stalls,
  /// the classic two-sided pitfall the paper warns about (§II-A).
  std::uint32_t buffer_count = 64;
  /// Bytes per pooled buffer. One message occupies one buffer; messages
  /// larger than this are rejected (size your pool for the protocol's
  /// maximum message, as Reptor does).
  std::size_t buffer_size = 128 * 1024;
  /// Selective signaling: request a completion on every Nth send. 1 means
  /// every send is signaled (the unoptimized baseline for Ablation A1).
  std::uint32_t signal_interval = 16;
  /// Payloads <= this are sent inline in the WQE (no payload DMA read, no
  /// pool buffer). 0 disables inlining (Ablation A2).
  std::size_t inline_threshold = 256;
  /// Register the application's send buffer and let the NIC read from it
  /// directly instead of copying into a pool buffer (paper §IV, large
  /// messages). Registrations are cached per buffer; the first write from
  /// a given buffer pays the registration cost.
  bool zero_copy_send = true;
  /// RC transport-retry budget for the underlying QP: a WR that never
  /// completes within this window (e.g. the peer is partitioned away)
  /// breaks the connection instead of wedging it. 0 disables.
  std::int64_t transport_retry_timeout_ns = 50 * 1000 * 1000;  // 50 ms
  /// Planned future optimization (paper §VII): hand the receive pool
  /// buffer to the application without the receive-side copy. Off by
  /// default — the paper's measured system copies on receive, which is
  /// what degrades large-message latency in Figs. 3/4 (Ablation A3 flips
  /// this).
  bool zero_copy_receive = false;
  /// Per-frame transport selection (PR 7). kFixed keeps the classic
  /// behaviour; kAdaptive consults the TransportSelector per frame.
  TransportPolicy policy;
};

}  // namespace rubin::nio
