#include "rubin/buffer_pool.hpp"

#include <stdexcept>
#include <string>

#include "common/audit.hpp"

namespace rubin::nio {

namespace {
constexpr std::uint8_t kFree = 0;
constexpr std::uint8_t kAcquired = 1;
}  // namespace

BufferPool::BufferPool(verbs::ProtectionDomain& pd, std::uint32_t count,
                       std::size_t size, std::uint32_t access)
    : pd_(&pd), slab_(static_cast<std::size_t>(count) * size), count_(count),
      size_(size), slot_state_(count, kFree) {
  mr_ = pd.register_memory(slab_, access);
  free_.reserve(count);
  // LIFO free list: the most recently used slot is the warmest in cache.
  for (std::uint32_t i = count; i > 0; --i) free_.push_back(i - 1);
}

BufferPool::~BufferPool() {
  RUBIN_AUDIT_ASSERT("buffer_pool", acquired_count() == 0,
                     std::to_string(acquired_count()) +
                         " slot(s) leaked at pool destruction (count=" +
                         std::to_string(count_) + " slot_size=" +
                         std::to_string(size_) + ")");
  pd_->deregister(mr_);
}

std::optional<std::uint32_t> BufferPool::acquire() {
  if (free_.empty()) return std::nullopt;
  const std::uint32_t slot = free_.back();
  free_.pop_back();
  RUBIN_AUDIT_ASSERT("buffer_pool", slot_state_[slot] == kFree,
                     "free list handed out slot " + std::to_string(slot) +
                         " already marked acquired");
  slot_state_[slot] = kAcquired;
  return slot;
}

void BufferPool::release(std::uint32_t slot) {
  if (slot >= count_) throw std::out_of_range("BufferPool::release: bad slot");
  if constexpr (audit::kEnabled) {
    if (slot_state_[slot] != kAcquired) {
      audit::fail("buffer_pool",
                  "double release of slot " + std::to_string(slot), __FILE__,
                  __LINE__);
      return;  // captured: drop the bogus release so the pool stays sane
    }
  }
  slot_state_[slot] = kFree;
  free_.push_back(slot);
}

verbs::Sge BufferPool::sge(std::uint32_t slot, std::uint32_t len) const {
  if (slot >= count_ || len > size_) {
    throw std::out_of_range("BufferPool::sge: bad slot or length");
  }
  return verbs::Sge{mr_->addr() + static_cast<std::uint64_t>(slot) * size_,
                    len, mr_->lkey()};
}

MutByteView BufferPool::view(std::uint32_t slot) {
  if (slot >= count_) throw std::out_of_range("BufferPool::view: bad slot");
  return MutByteView(slab_).subspan(static_cast<std::size_t>(slot) * size_,
                                    size_);
}

ByteView BufferPool::view(std::uint32_t slot, std::size_t len) const {
  if (slot >= count_ || len > size_) {
    throw std::out_of_range("BufferPool::view: bad slot or length");
  }
  return ByteView(slab_).subspan(static_cast<std::size_t>(slot) * size_, len);
}

}  // namespace rubin::nio
