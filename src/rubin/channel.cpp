#include "rubin/channel.hpp"

#include <algorithm>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>

#include "common/audit.hpp"
#include "rubin/context.hpp"

namespace rubin::nio {

// --------------------------------------------------------- RdmaChannel ---

RdmaChannel::RdmaChannel(RubinContext& ctx, std::uint64_t id,
                         ChannelConfig cfg)
    : ctx_(&ctx), id_(id), cfg_(cfg), activity_(ctx.simulator()) {}

RdmaChannel::~RdmaChannel() {
  // Return pool slots still riding on in-flight WRs: the hardware can no
  // longer complete them once the QP dies with the channel, and the
  // pool's leak-at-destruction audit should only report slots the
  // application truly lost.
  flush_outstanding();
  for (auto& [key, mr] : send_mr_cache_) ctx_->pd().deregister(mr);
}

void RdmaChannel::flush_outstanding() {
  while (!outstanding_.empty()) {
    const OutstandingSend o = outstanding_.pop();
    ++reclaimed_wrs_;
    if (o.pool_slot >= 0 && send_pool_ != nullptr) {
      send_pool_->release(static_cast<std::uint32_t>(o.pool_slot));
    }
  }
}

void RdmaChannel::fail(verbs::WcStatus status) {
  if (last_error_ == verbs::WcStatus::kSuccess) {
    last_error_ = status;
    RUBIN_AUDIT_COUNT("channel.completion_errors", 1);
  }
  flush_outstanding();
  close();
}

void RdmaChannel::init_qp() {
  auto& dev = ctx_->device();
  // Config validation happens here, before any resource exists: an inline
  // threshold the device cannot honour used to be silently clamped by the
  // QP cap, which made every "inline" send above the device limit fail at
  // post time instead — reject it up front with a message that names both
  // numbers.
  if (cfg_.inline_threshold > dev.max_inline()) {
    throw std::invalid_argument(
        "ChannelConfig: inline_threshold " +
        std::to_string(cfg_.inline_threshold) +
        " exceeds the device max_inline " + std::to_string(dev.max_inline()) +
        " (lower the threshold or disable inlining with 0)");
  }
  comp_channel_ = dev.create_channel();
  send_cq_ = dev.create_cq(2 * cfg_.buffer_count, comp_channel_);
  recv_cq_ = dev.create_cq(2 * cfg_.buffer_count, comp_channel_);

  verbs::QpConfig qc;
  qc.max_send_wr = cfg_.buffer_count;
  qc.max_recv_wr = cfg_.buffer_count;
  qc.max_inline = static_cast<std::uint32_t>(cfg_.inline_threshold);
  qc.max_sge = verbs::SgeList::kMaxSges;
  qc.transport_retry_timeout_ns = cfg_.transport_retry_timeout_ns;
  qp_ = dev.create_qp(ctx_->pd(), *send_cq_, *recv_cq_, qc);

  send_pool_ = std::make_unique<BufferPool>(ctx_->pd(), cfg_.buffer_count,
                                            cfg_.buffer_size, 0u);
  recv_pool_ = std::make_unique<BufferPool>(
      ctx_->pd(), cfg_.buffer_count, cfg_.buffer_size,
      verbs::kAccessLocalWrite);

  // Pre-post the whole receive pool; wr_id == pool slot. Channel receives
  // capture the payload handle: the pool slot still backs the WR (flow
  // control and all charges are pool-shaped), but the inbound bytes flow
  // to read()/read_shared() without the physical DMA copy into the slot.
  std::vector<verbs::RecvWr> recvs;
  recvs.reserve(cfg_.buffer_count);
  for (std::uint32_t slot = 0; slot < cfg_.buffer_count; ++slot) {
    recvs.push_back(verbs::RecvWr{
        slot,
        recv_pool_->sge(slot, static_cast<std::uint32_t>(cfg_.buffer_size)),
        /*capture_payload=*/true});
  }
  (void)qp_->post_recv_now(std::move(recvs));

  // Completion events pump the channel and wake whoever is waiting.
  auto self = weak_from_this();
  comp_channel_->set_sink([self](verbs::CompletionQueue*) {
    if (auto ch = self.lock()) {
      ++ch->unacked_events_;  // paid by the app thread on its next op
      ch->pump();
      ch->notify();
    }
  });
  send_cq_->req_notify();
  recv_cq_->req_notify();
}

void RdmaChannel::on_cm_event(const verbs::CmEvent& e) {
  switch (e.type) {
    case verbs::CmEventType::kEstablished:
      state_ = State::kEstablished;
      break;
    case verbs::CmEventType::kRejected:
    case verbs::CmEventType::kDisconnected:
      state_ = State::kClosed;
      break;
    case verbs::CmEventType::kConnectRequest:
      break;  // server-channel concern
  }
  notify();
}

void RdmaChannel::pump() {
  if (send_cq_ == nullptr) return;
  for (const verbs::Completion& c : send_cq_->poll(64)) {
    if (c.status != verbs::WcStatus::kSuccess) {
      fail(c.status);
      continue;
    }
    // Flush residue: a success CQE polled after a failure in the same
    // batch has no outstanding WR left to match (fail() reclaimed them).
    if (state_ == State::kClosed) continue;
    ++stats_.signaled_completions;
    // In-order reclamation: this signaled completion covers every earlier
    // unsignaled WR (selective signaling, §IV).
    bool matched_signaled = false;
    while (!outstanding_.empty()) {
      const OutstandingSend done = outstanding_.pop();
      ++reclaimed_wrs_;
      if (done.pool_slot >= 0) {
        send_pool_->release(static_cast<std::uint32_t>(done.pool_slot));
      }
      if (done.signaled) {
        matched_signaled = true;
        break;
      }
    }
    // Completions are delivered in order, so every successful signaled
    // completion must map onto the oldest signaled WR still outstanding;
    // running dry instead means posted/reclaimed accounting broke.
    RUBIN_AUDIT_ASSERT("channel", matched_signaled,
                       "signaled completion with no signaled WR outstanding");
  }
  for (const verbs::Completion& c : recv_cq_->poll(64)) {
    if (c.status != verbs::WcStatus::kSuccess) {
      fail(c.status);
      continue;
    }
    if (state_ == State::kClosed) continue;
    filled_.push(FilledRecv{static_cast<std::uint32_t>(c.wr_id), c.byte_len,
                            c.payload});
    ++stats_.messages_received;
  }
  send_cq_->req_notify();
  recv_cq_->req_notify();
}

sim::Task<void> RdmaChannel::ack_events() {
  if (unacked_events_ == 0) co_return;
  const std::uint32_t n = unacked_events_;
  unacked_events_ = 0;
  co_await ctx_->simulator().sleep(
      static_cast<sim::Time>(n) * ctx_->cost().event_ack_cpu);
}

void RdmaChannel::notify() {
  activity_.set();
  activity_.reset();  // edge semantics: wake current waiters only
  if (selector_notify_) selector_notify_();
}

sim::Task<bool> RdmaChannel::stage_message(ByteView msg,
                                           const SharedBytes* handle,
                                           std::vector<verbs::SendWr>& out) {
  const bool zero_copy = handle != nullptr && !handle->empty();
  auto& sim = ctx_->simulator();
  const auto& cost = ctx_->cost();
  if (msg.size() > cfg_.buffer_size) {
    throw std::invalid_argument("RdmaChannel::write: message exceeds buffer_size");
  }
  // Slots consumed by WRs already staged in this batch are not visible in
  // send_slots_free() until the post, so subtract them here.
  if (qp_->send_slots_free() <= out.size()) co_return false;

  verbs::SendWr wr;
  wr.opcode = verbs::Opcode::kSend;
  wr.wr_id = stats_.messages_sent;

  const bool inlined =
      cfg_.inline_threshold > 0 && msg.size() <= cfg_.inline_threshold;
  OutstandingSend rec;
  if (inlined) {
    // Inline: no pool buffer, no registration; the post copies the bytes
    // (physically elided when a handle is attached — post_send still
    // charges the WQE copy).
    wr.inline_data = true;
    wr.sg_list = verbs::Sge{reinterpret_cast<std::uint64_t>(msg.data()),
                            static_cast<std::uint32_t>(msg.size()), 0};
    if (zero_copy) wr.shared_payload.append(*handle);
    ++stats_.inline_sends;
  } else if (cfg_.zero_copy_send) {
    // Register (or reuse) the application buffer itself (§IV). See the
    // send_mr_cache_ declaration for why handle-backed sends key by
    // allocation id instead of address.
    const MrKey key =
        zero_copy
            ? MrKey{handle->buffer_id(),
                    handle->buffer_offset() +
                        static_cast<std::uint64_t>(msg.data() -
                                                   handle->data())}
            : MrKey{0, reinterpret_cast<std::uint64_t>(msg.data())};
    verbs::MemoryRegion*& cached = send_mr_cache_[key];
    if (cached == nullptr || cached->length() < msg.size()) {
      if (cached != nullptr) ctx_->pd().deregister(cached);
      co_await sim.sleep(cost.mr_register_time(msg.size()));
      cached = ctx_->pd().register_memory(
          MutByteView(const_cast<std::uint8_t*>(msg.data()), msg.size()), 0u);
      ++stats_.send_registrations;
    }
    wr.sg_list = verbs::Sge{reinterpret_cast<std::uint64_t>(msg.data()),
                            static_cast<std::uint32_t>(msg.size()),
                            cached->lkey()};
    if (zero_copy) wr.shared_payload.append(*handle);
    ++stats_.zero_copy_sends;
  } else {
    // Copy into a pooled, pre-registered buffer. The slot and the copy
    // charge model DiSNI's staging; with a handle the physical memcpy is
    // elided (the slot is still held for the WR's lifetime, so capacity
    // behaves identically).
    const auto slot = send_pool_->acquire();
    if (!slot) co_return false;
    co_await sim.sleep(cost.copy_time(msg.size()));
    if (zero_copy) {
      wr.shared_payload.append(*handle);
    } else {
      RUBIN_AUDIT_COUNT("datapath.copy_bytes", msg.size());
      std::memcpy(send_pool_->view(*slot).data(), msg.data(), msg.size());
    }
    wr.sg_list = send_pool_->sge(*slot, static_cast<std::uint32_t>(msg.size()));
    rec.pool_slot = static_cast<std::int32_t>(*slot);
    ++stats_.pool_copy_sends;
  }

  enqueue_staged(std::move(wr), rec, out);
  co_return true;
}

void RdmaChannel::enqueue_staged(verbs::SendWr&& wr, OutstandingSend rec,
                                 std::vector<verbs::SendWr>& out) {
  // Selective signaling: every Nth send requests a completion; also signal
  // when the send queue is nearly exhausted so slots always come back.
  ++sends_since_signal_;
  const bool low_slots = qp_->send_slots_free() <= out.size() + 2;
  wr.signaled = cfg_.signal_interval <= 1 ||
                sends_since_signal_ >= cfg_.signal_interval || low_slots;
  if (wr.signaled) sends_since_signal_ = 0;
  rec.signaled = wr.signaled;
  // Selective-signaling cadence: an unsignaled run longer than the
  // configured interval can never be reclaimed promptly and will wedge
  // the send queue.
  RUBIN_AUDIT_ASSERT(
      "channel",
      sends_since_signal_ < std::max<std::uint32_t>(cfg_.signal_interval, 1),
      "unsignaled send run exceeds the signal interval");

  outstanding_.push(rec);
  ++posted_wrs_;
  RUBIN_AUDIT_ASSERT("channel", outstanding_.size() <= cfg_.buffer_count,
                     "outstanding WRs exceed the send queue depth (" +
                         std::to_string(outstanding_.size()) + " > " +
                         std::to_string(cfg_.buffer_count) + ")");
  out.push_back(std::move(wr));
  ++stats_.messages_sent;
}

sim::Task<bool> RdmaChannel::stage_frame(const FrameVec& frame,
                                         std::vector<verbs::SendWr>& out) {
  if (frame.slice_count() <= 1) {
    // Degenerate frames take the classic single-SGE path and stay
    // bit-identical to a SharedBytes write.
    SharedBytes whole =
        frame.slice_count() == 1 ? frame.slice_at(0) : SharedBytes{};
    co_return co_await stage_message(whole.view(), &whole, out);
  }
  const std::size_t total = frame.total_size();
  if (total > cfg_.buffer_size) {
    throw std::invalid_argument(
        "RdmaChannel::write: frame exceeds buffer_size");
  }
  if (qp_->send_slots_free() <= out.size()) co_return false;

  verbs::SendWr wr;
  wr.opcode = verbs::Opcode::kSend;
  wr.wr_id = stats_.messages_sent;

  OutstandingSend rec;
  const bool inlined =
      cfg_.inline_threshold > 0 && total <= cfg_.inline_threshold;
  if (inlined) {
    // Inline gather: the CPU reads the slices straight into the WQE
    // (IBV_SEND_INLINE ignores lkeys); post_send charges the WQE copy
    // over the total, and the handles elide the physical copy.
    wr.inline_data = true;
    for (const SharedBytes& s : frame) {
      wr.sg_list.push_back(
          verbs::Sge{reinterpret_cast<std::uint64_t>(s.data()),
                     static_cast<std::uint32_t>(s.size()), 0});
    }
    wr.shared_payload = frame;
    ++stats_.inline_sends;
  } else {
    // True scatter/gather post — the tentpole. The pool slot donates
    // registered address space for the SGE list (a registered arena, as
    // real zero-copy stacks allocate from) and the refcounted slices ride
    // the WR; the NIC DMA-gathers the elements directly. The old pool
    // path's staging memcpy — its copy_time charge *and* the physical
    // copy counted in datapath.copy_bytes — does not happen at all:
    // that memcpy is the "last gather copy" this path removes.
    const auto slot = send_pool_->acquire();
    if (!slot) co_return false;
    const verbs::Sge whole =
        send_pool_->sge(*slot, static_cast<std::uint32_t>(total));
    std::uint64_t addr = whole.addr;
    for (const SharedBytes& s : frame) {
      wr.sg_list.push_back(verbs::Sge{
          addr, static_cast<std::uint32_t>(s.size()), whole.lkey});
      addr += s.size();
    }
    wr.shared_payload = frame;
    rec.pool_slot = static_cast<std::int32_t>(*slot);
    ++stats_.gather_sends;
  }

  enqueue_staged(std::move(wr), rec, out);
  co_return true;
}

// The single-message writes inline the batch prologue/epilogue instead
// of wrapping the message in a one-element vector: they are the
// closed-loop hot path, and the wrapper vector was pure churn. The
// charge sequence is identical to write_batch with one message.
sim::Task<std::size_t> RdmaChannel::write(ByteView msg) {
  co_return co_await write_one(msg, nullptr);
}

sim::Task<std::size_t> RdmaChannel::write(SharedBytes msg) {
  co_return co_await write_one(msg.view(), &msg);
}

sim::Task<std::size_t> RdmaChannel::write_one(ByteView msg,
                                              const SharedBytes* handle) {
  co_await ack_events();
  pump();
  RUBIN_AUDIT_ASSERT("channel",
                     outstanding_.size() == posted_wrs_ - reclaimed_wrs_,
                     "posted/reclaimed WR accounting diverged from the "
                     "outstanding queue");
  if (state_ != State::kEstablished) {
    co_await ctx_->simulator().sleep(ctx_->cost().post_call_cpu);
    co_return 0;
  }

  StagingLease lease(*this);
  std::vector<verbs::SendWr>& wrs = lease.wrs();
  if (!co_await stage_message(msg, handle, wrs) || wrs.empty()) {
    co_await ctx_->simulator().sleep(ctx_->cost().post_call_cpu);
    co_return 0;
  }

  ++stats_.doorbells;
  const verbs::PostResult r =
      co_await qp_->post_send(std::span<verbs::SendWr>(wrs));
  if (r != verbs::PostResult::kOk) {
    fail(verbs::WcStatus::kWorkRequestFlushed);
    co_return 0;
  }
  co_return msg.size();
}

sim::Task<std::size_t> RdmaChannel::write_batch(std::vector<ByteView> msgs) {
  co_await ack_events();
  pump();
  RUBIN_AUDIT_ASSERT("channel",
                     outstanding_.size() == posted_wrs_ - reclaimed_wrs_,
                     "posted/reclaimed WR accounting diverged from the "
                     "outstanding queue");
  if (state_ != State::kEstablished || msgs.empty()) {
    // Even a failed call costs CPU — and guarantees that "retry until
    // writable" loops always advance virtual time (no livelock).
    co_await ctx_->simulator().sleep(ctx_->cost().post_call_cpu);
    co_return 0;
  }

  StagingLease lease(*this);
  std::vector<verbs::SendWr>& wrs = lease.wrs();
  wrs.reserve(msgs.size());
  std::size_t accepted = 0;
  for (const ByteView msg : msgs) {
    if (!co_await stage_message(msg, nullptr, wrs)) break;
    ++accepted;
  }
  if (wrs.empty()) {
    co_await ctx_->simulator().sleep(ctx_->cost().post_call_cpu);
    co_return 0;
  }

  ++stats_.doorbells;
  const verbs::PostResult r =
      co_await qp_->post_send(std::span<verbs::SendWr>(wrs));
  if (r != verbs::PostResult::kOk) {
    // Capacity was checked per message; a failure here means the QP died.
    // The staged WRs were never posted and will never complete.
    fail(verbs::WcStatus::kWorkRequestFlushed);
    co_return 0;
  }
  co_return accepted;
}

sim::Task<std::size_t> RdmaChannel::write_batch(std::vector<SharedBytes> msgs) {
  co_await ack_events();
  pump();
  RUBIN_AUDIT_ASSERT("channel",
                     outstanding_.size() == posted_wrs_ - reclaimed_wrs_,
                     "posted/reclaimed WR accounting diverged from the "
                     "outstanding queue");
  if (state_ != State::kEstablished || msgs.empty()) {
    co_await ctx_->simulator().sleep(ctx_->cost().post_call_cpu);
    co_return 0;
  }

  StagingLease lease(*this);
  std::vector<verbs::SendWr>& wrs = lease.wrs();
  wrs.reserve(msgs.size());
  std::size_t accepted = 0;
  for (const SharedBytes& msg : msgs) {
    if (!co_await stage_message(msg.view(), &msg, wrs)) break;
    ++accepted;
  }
  if (wrs.empty()) {
    co_await ctx_->simulator().sleep(ctx_->cost().post_call_cpu);
    co_return 0;
  }

  ++stats_.doorbells;
  const verbs::PostResult r =
      co_await qp_->post_send(std::span<verbs::SendWr>(wrs));
  if (r != verbs::PostResult::kOk) {
    fail(verbs::WcStatus::kWorkRequestFlushed);
    co_return 0;
  }
  co_return accepted;
}

sim::Task<std::size_t> RdmaChannel::write(FrameVec msg) {
  const std::size_t len = msg.total_size();
  std::vector<FrameVec> one;
  one.push_back(std::move(msg));
  const std::size_t n = co_await write_batch(std::move(one));
  co_return n == 1 ? len : 0;
}

sim::Task<std::size_t> RdmaChannel::write_batch(std::vector<FrameVec> msgs) {
  co_await ack_events();
  pump();
  RUBIN_AUDIT_ASSERT("channel",
                     outstanding_.size() == posted_wrs_ - reclaimed_wrs_,
                     "posted/reclaimed WR accounting diverged from the "
                     "outstanding queue");
  if (state_ != State::kEstablished || msgs.empty()) {
    co_await ctx_->simulator().sleep(ctx_->cost().post_call_cpu);
    co_return 0;
  }

  StagingLease lease(*this);
  std::vector<verbs::SendWr>& wrs = lease.wrs();
  wrs.reserve(msgs.size());
  std::size_t accepted = 0;
  for (const FrameVec& msg : msgs) {
    if (!co_await stage_frame(msg, wrs)) break;
    ++accepted;
  }
  if (wrs.empty()) {
    co_await ctx_->simulator().sleep(ctx_->cost().post_call_cpu);
    co_return 0;
  }

  ++stats_.doorbells;
  const verbs::PostResult r =
      co_await qp_->post_send(std::span<verbs::SendWr>(wrs));
  if (r != verbs::PostResult::kOk) {
    fail(verbs::WcStatus::kWorkRequestFlushed);
    co_return 0;
  }
  co_return accepted;
}

sim::Task<void> RdmaChannel::finish_read(const FilledRecv& msg) {
  auto& sim = ctx_->simulator();
  const auto& cost = ctx_->cost();
  if (!cfg_.zero_copy_receive) {
    // The receive-side copy (paper §IV): DiSNI pool buffers and the
    // application's buffers are incompatible, so received data is copied
    // out. This is the measured large-message degradation in Figs. 3/4,
    // and it stays *charged* even on handle-based reads — removing it is
    // the paper's future work, gated behind zero_copy_receive.
    co_await sim.sleep(cost.copy_time(msg.len));
    ++stats_.receive_copies;
  }
  // Recycle the buffer: re-post the receive for this slot.
  (void)co_await qp_->post_recv_one(verbs::RecvWr{
      msg.slot,
      recv_pool_->sge(msg.slot, static_cast<std::uint32_t>(cfg_.buffer_size)),
      /*capture_payload=*/true});
}

sim::Task<std::size_t> RdmaChannel::read(MutByteView out) {
  co_await ack_events();
  pump();
  if (filled_.empty()) {
    // Checking the CQs costs a little CPU even when nothing arrived;
    // this also keeps poll-style read loops livelock-free.
    co_await ctx_->simulator().sleep(ctx_->cost().post_call_cpu);
    co_return 0;
  }
  const FilledRecv msg = filled_.front();
  if (out.size() < msg.len) {
    throw std::invalid_argument("RdmaChannel::read: output buffer too small");
  }
  (void)filled_.pop();

  RUBIN_AUDIT_COUNT("datapath.recv_copy_bytes", msg.len);
  const std::uint8_t* src = msg.payload.empty()
                                ? recv_pool_->view(msg.slot).data()
                                : msg.payload.data();
  std::memcpy(out.data(), src, msg.len);
  co_await finish_read(msg);
  co_return msg.len;
}

sim::Task<SharedBytes> RdmaChannel::read_shared() {
  co_await ack_events();
  pump();
  if (filled_.empty()) {
    co_await ctx_->simulator().sleep(ctx_->cost().post_call_cpu);
    co_return SharedBytes{};
  }
  FilledRecv msg = filled_.front();
  (void)filled_.pop();

  // Hand the captured payload straight out; fall back to a physical copy
  // for receives that predate capture (cannot happen on this channel, but
  // keeps the method total).
  SharedBytes payload = std::move(msg.payload);
  if (payload.empty() && msg.len > 0) {
    payload = SharedBytes::copy_of(recv_pool_->view(msg.slot).first(msg.len));
  }
  co_await finish_read(msg);
  co_return payload;
}

std::size_t RdmaChannel::readable_messages() noexcept {
  pump();
  return filled_.size();
}

bool RdmaChannel::writable() noexcept {
  if (state_ != State::kEstablished) return false;
  pump();
  if (qp_->send_slots_free() == 0) return false;
  // Pool-copy mode also needs a pool slot; inline/zero-copy do not, but
  // report conservatively so callers can rely on writable() => write > 0.
  if (!cfg_.zero_copy_send && cfg_.inline_threshold == 0) {
    return send_pool_->free_count() > 0;
  }
  return true;
}

std::uint32_t RdmaChannel::send_slots_free() noexcept {
  if (state_ != State::kEstablished) return 0;
  pump();
  return qp_->send_slots_free();
}

std::uint32_t RdmaChannel::send_slots_hint() const noexcept {
  if (state_ != State::kEstablished) return 0;
  return qp_->send_slots_free();
}

sim::Task<std::size_t> RdmaChannel::read_await(MutByteView out) {
  for (;;) {
    const std::size_t n = co_await read(out);
    if (n > 0 || state_ == State::kClosed) co_return n;
    co_await activity_.wait();
  }
}

void RdmaChannel::close() {
  if (state_ == State::kClosed) return;
  state_ = State::kClosed;
  if (conn_id_ != 0) {
    ctx_->cm().disconnect(conn_id_);
  } else if (qp_) {
    qp_->set_error();
  }
  notify();
}

// --------------------------------------------------- RdmaServerChannel ---

RdmaServerChannel::RdmaServerChannel(RubinContext& ctx, std::uint64_t id,
                                     std::uint16_t port, ChannelConfig cfg)
    : ctx_(&ctx), id_(id), port_(port), cfg_(cfg) {}

void RdmaServerChannel::on_cm_event(const verbs::CmEvent& e) {
  if (closed_) return;
  switch (e.type) {
    case verbs::CmEventType::kConnectRequest:
      pending_.push(e);
      break;
    case verbs::CmEventType::kEstablished:
      if (auto it = accepting_.find(e.conn_id); it != accepting_.end()) {
        it->second->state_ = RdmaChannel::State::kEstablished;
        it->second->notify();
        established_.push(std::move(it->second));
        accepting_.erase(it);
      }
      break;
    case verbs::CmEventType::kDisconnected:
      if (auto it = accepting_.find(e.conn_id); it != accepting_.end()) {
        it->second->state_ = RdmaChannel::State::kClosed;
        it->second->notify();
        accepting_.erase(it);
      }
      break;
    case verbs::CmEventType::kRejected:
      break;
  }
  notify();
}

std::shared_ptr<RdmaChannel> RdmaServerChannel::accept() {
  if (pending_.empty()) return nullptr;
  const verbs::CmEvent req = pending_.pop();

  auto channel = std::shared_ptr<RdmaChannel>(
      new RdmaChannel(*ctx_, ctx_->next_id(), cfg_));
  channel->init_qp();
  channel->conn_id_ = req.conn_id;
  accepting_[req.conn_id] = channel;
  listener_->accept(req.conn_id, channel->qp_);
  return channel;
}

std::shared_ptr<RdmaChannel> RdmaServerChannel::next_established() {
  if (established_.empty()) return nullptr;
  auto ch = established_.pop();
  return ch;
}

void RdmaServerChannel::notify() {
  if (selector_notify_) selector_notify_();
}

void RdmaServerChannel::close() {
  closed_ = true;
  pending_.clear();
}

// --------------------------------------------------------- RubinContext --

std::shared_ptr<RdmaServerChannel> RubinContext::listen(std::uint16_t port,
                                                        ChannelConfig cfg) {
  auto server = std::shared_ptr<RdmaServerChannel>(
      new RdmaServerChannel(*this, next_id(), port, cfg));
  std::weak_ptr<RdmaServerChannel> weak = server;
  server->listener_ = cm_->listen(dev_->host(), port,
                                  [weak](const verbs::CmEvent& e) {
                                    if (auto s = weak.lock()) s->on_cm_event(e);
                                  });
  return server;
}

std::shared_ptr<RdmaChannel> RubinContext::connect(net::HostId remote,
                                                   std::uint16_t port,
                                                   ChannelConfig cfg) {
  auto channel =
      std::shared_ptr<RdmaChannel>(new RdmaChannel(*this, next_id(), cfg));
  channel->init_qp();
  std::weak_ptr<RdmaChannel> weak = channel;
  channel->conn_id_ =
      cm_->connect(channel->qp_, remote, port, [weak](const verbs::CmEvent& e) {
        if (auto ch = weak.lock()) ch->on_cm_event(e);
      });
  return channel;
}

}  // namespace rubin::nio
