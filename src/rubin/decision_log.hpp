// DecisionLog — the one-sided fast-path commit substrate (DESIGN.md §12).
//
// The paper's measured system keeps agreement traffic on two-sided
// send/receive (§III-A); Aguilera et al. ("The Impact of RDMA on
// Agreement") showed what the alternative buys: the primary RDMA-writes
// ordered decision records straight into every replica's memory and
// *memory permissions* — not message counting — bound what a deposed
// primary can do. This class reproduces that design as an opt-in
// accelerator next to the existing message path:
//
//   * every replica exposes a per-view decision ring (slot_count slots);
//     the current primary writes one framed record per sequence number
//     into slot seq % slot_count of every peer's ring;
//   * replicas poll their ring (there is nothing to block on — the same
//     limitation as OneSidedChannel) and, after authenticating a record,
//     endorse it by RDMA-writing a 16-byte (seq, tag) ack cell into every
//     peer's ack table. Ack cells double as flow-control credits: the
//     primary reuses ring slot s for seq only after seeing the target's
//     ack for seq - slot_count in that same cell;
//   * at a view change the ring's rkey is *flipped* via
//     Device::flip_write_permission — revocation is instantaneous, the
//     grant pays the NIC re-programming charge — so the deposed primary
//     physically loses write access (its next write completes with
//     kRemoteAccessError and its QP breaks) before the new primary gains
//     it.
//
// Authentication is layered, not assumed: records are the *same*
// MAC-authenticated PRE-PREPARE frames the message path broadcasts, so a
// forged slot dies in decode_verified exactly like a forged message. Ack
// cells are unforgeable by placement: each peer writes through an rkey
// that maps only its own table region, so replica r's cells can only have
// been written by r. The framing adds a trailing canary so a torn write
// is detected as "not arrived yet" rather than consumed half-written.
//
// Safety is never carried by this class. The replica layer commits on
// 2f + 1 endorsements (itself plus matching ack cells), any two such
// quorums intersect in an honest replica, and every endorsement marks the
// entry as view-change-carried — but the unconditional fallback is the
// ordinary message path, which keeps running underneath (the primary
// dual-sends every proposal). Anything unexpected in a slot suspends the
// fast path until the next view; it never blocks agreement.
//
// Group bootstrap mirrors OneSidedChannel::create_pair: rings, ack tables
// and QPs are wired in-process (production would exchange the addresses
// through the CM / NEW-VIEW messages). The per-view rkey handover uses
// the same management-plane shortcut: the primary queries a peer's
// current grant and gets it only once that peer's flip for the view has
// completed — before that the slot is simply bypassed and the message
// path carries the sequence.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/shared_bytes.hpp"
#include "rubin/context.hpp"
#include "rubin/transport_select.hpp"
#include "sim/task.hpp"
#include "verbs/device.hpp"

namespace rubin::nio {

struct DecisionLogConfig {
  std::uint32_t slot_count = 32;
  /// Largest encoded decision record (a PRE-PREPARE frame) a slot holds.
  std::size_t slot_payload = 8 * 1024;
  /// Replica poll granularity: a record is noticed, in expectation, half
  /// an interval after it lands (the ablation knob of bench_bft_e2e).
  sim::Time poll_interval = sim::microseconds(0.5);
  /// Per-record transport gate. kFixed/kWrite always takes the one-sided
  /// path when a credit exists; kAdaptive lets the selector bypass it for
  /// frames where the cost model favours the message path anyway.
  TransportPolicy policy{TransportPolicy::Mode::kFixed, TransportKind::kWrite};
};

struct DecisionLogStats {
  std::uint64_t records_published = 0;  // one per (seq, peer) write posted
  std::uint64_t bypasses = 0;           // peer skipped (no grant/credit/pick)
  std::uint64_t acks_sent = 0;          // one per (seq, peer) ack write
  std::uint64_t torn_slots = 0;
  std::uint64_t stale_slots = 0;
  std::uint64_t write_naks = 0;         // kRemoteAccessError completions seen
  std::uint64_t permission_flips = 0;
};

/// A validated slot as handed to the replica layer. `record` is the
/// MAC-authenticated frame; the caller still runs decode_verified on it.
struct DecisionRecord {
  std::uint64_t seq = 0;
  std::uint64_t view = 0;
  /// Primary's virtual clock at publish (carried for the message-delay
  /// accounting of bench_bft_e2e; replicas treat it as advisory).
  sim::Time proposed_at = 0;
  SharedBytes record;
};

enum class SlotStatus : std::uint8_t {
  kEmpty,     // nothing (new) for this sequence yet
  kStale,     // a record for this seq from an older view (replay/leftover)
  kTorn,      // header matches but the canary does not: treat as in-flight
  kBadFrame,  // framing that no honest primary produces: suspend fast path
  kReady,     // framed record extracted; authenticate and endorse it
};

class DecisionLog {
 public:
  /// Slot framing constants (exposed for the adversarial tests).
  static constexpr std::size_t kHeaderBytes = 32;  // seq|view|proposed_at|len
  static constexpr std::size_t kCanaryBytes = 8;
  static constexpr std::size_t kAckCellBytes = 16;  // seq | tag

  /// Wires a full mesh: one decision log per context, QPs between every
  /// pair, rings and ack tables registered and their addresses exchanged
  /// in-process. Every log starts granted to view 0's primary.
  static std::vector<std::unique_ptr<DecisionLog>> create_group(
      const std::vector<RubinContext*>& ctxs, DecisionLogConfig cfg = {});

  std::uint32_t index() const noexcept { return self_; }
  std::uint32_t group_size() const noexcept {
    return static_cast<std::uint32_t>(group_.size());
  }
  const DecisionLogConfig& config() const noexcept { return cfg_; }
  const DecisionLogStats& stats() const noexcept { return stats_; }

  // ---------------------------------------------------- view lifecycle --
  /// Rotates the ring's write permission for `view`: the previous rkey is
  /// revoked before this coroutine first suspends, the fresh grant is
  /// visible (via grant_for) only after the NIC re-programming charge.
  sim::Task<void> enter_view(std::uint64_t view);

  /// The view this ring currently accepts writes for.
  std::uint64_t granted_view() const noexcept { return granted_view_; }

  /// Management-plane rkey handover: the grant for `view`, or nullopt
  /// while this replica's flip for that view has not completed (callers
  /// bypass the fast path for the sequence instead of waiting).
  std::optional<std::uint32_t> grant_for(std::uint64_t view) const noexcept {
    if (granted_view_ != view) return std::nullopt;
    return ring_mr_->rkey();
  }

  // ------------------------------------------------------ primary side --
  /// RDMA-writes the framed record into every peer's ring slot
  /// seq % slot_count. Per peer, the write happens only if (a) the peer's
  /// flip for `view` completed, (b) the slot's previous occupant was
  /// acked (flow control), and (c) the transport selector picks kWrite.
  /// Returns how many peers were written; the remainder ride the message
  /// path (the caller dual-sends regardless).
  sim::Task<std::uint32_t> publish(std::uint64_t seq, std::uint64_t view,
                                   sim::Time proposed_at, SharedBytes record);

  // ------------------------------------------------------ replica side --
  /// Polls the local ring slot for `seq` as of `view`. kReady extracts
  /// the record (one receive-side copy, charged); every other status is
  /// cheap. See SlotStatus for the fallback contract per value.
  sim::Task<SlotStatus> poll_slot(std::uint64_t seq, std::uint64_t view,
                                  DecisionRecord& out);

  /// Endorses (seq, tag): writes the 16-byte ack cell into every peer's
  /// ack table (small inline RDMA WRITEs — no staging, no completion
  /// events). tag is the record digest truncated to 64 bits.
  sim::Task<void> ack(std::uint64_t seq, std::uint64_t tag);

  /// Distinct peers whose ack cell for `seq` matches (seq, tag) — the
  /// remote endorsements of the commit rule. Cells are authenticated by
  /// placement: peer p's table region accepts only p's rkey.
  std::uint32_t acks_for(std::uint64_t seq, std::uint64_t tag) const;

  /// Drains this log's send CQ, counting kRemoteAccessError completions
  /// (a revoked-rkey write bouncing off a flipped ring). publish() calls
  /// it; the deposed-primary tests call it directly.
  std::size_t drain_completions();

  // ------------------------------------------- attack / test surface ----
  /// What an attacker needs (§III-C exposure accounting).
  std::uint32_t ring_rkey() const noexcept { return ring_mr_->rkey(); }
  std::uint64_t ring_addr() const noexcept { return ring_mr_->addr(); }
  std::size_t exposed_bytes() const noexcept;

  /// Management-plane grant query for `peer`'s ring as of `view` — the
  /// same handover publish() uses internally; nullopt while the peer's
  /// flip for that view is pending. Byzantine strategies use it to forge
  /// with a *valid* key, which is exactly the §III-C threat model.
  std::optional<std::uint32_t> peer_grant(std::uint32_t peer,
                                          std::uint64_t view) const {
    return group_[peer]->grant_for(view);
  }

  /// The last ring rkey this node obtained for `peer` through a publish —
  /// stale the moment the peer flips. The deposed-primary strategy keeps
  /// writing through it to demonstrate the NAK.
  std::uint32_t cached_grant(std::uint32_t peer) const noexcept {
    return cached_rkey_[peer];
  }

  /// FaultLab: posts a raw RDMA WRITE of `bytes` at byte `offset` of
  /// `peer`'s ring, through `rkey` (default: the cached grant, however
  /// stale). This is the Byzantine primary's pen: forged slots, torn
  /// writes, replays and revoked-key probes are all built on it.
  sim::Task<verbs::PostResult> raw_write(std::uint32_t peer,
                                         std::uint64_t offset,
                                         SharedBytes bytes,
                                         std::optional<std::uint32_t> rkey = {});

  /// Builds a fully framed slot image (header | payload | canary). A
  /// corrupt canary models the torn write.
  static SharedBytes make_slot(std::uint64_t seq, std::uint64_t view,
                               sim::Time proposed_at, ByteView payload,
                               bool valid_canary = true);

  static std::uint64_t canary_of(std::uint64_t seq,
                                 std::uint64_t view) noexcept {
    return (seq + 1) * 0x9E3779B97F4A7C15ULL ^
           (view + 1) * 0xC2B2AE3D27D4EB4FULL;
  }

  std::size_t slot_stride() const noexcept {
    return kHeaderBytes + cfg_.slot_payload + kCanaryBytes;
  }
  std::uint64_t slot_offset(std::uint64_t seq) const noexcept {
    return (seq % cfg_.slot_count) * slot_stride();
  }

 private:
  DecisionLog(RubinContext& ctx, std::uint32_t self, std::uint32_t n,
              DecisionLogConfig cfg);

  /// Setup-path initial grant for view 0 (no NIC charge — like
  /// post_recv_now, the cost sits off the measured data path).
  void grant_initial();

  bool has_credit(std::uint32_t peer, std::uint64_t seq) const;
  sim::Task<verbs::PostResult> post_ring_write(std::uint32_t peer,
                                               std::uint64_t remote_off,
                                               FrameVec wire,
                                               std::uint32_t rkey);

  RubinContext* ctx_;
  DecisionLogConfig cfg_;
  std::uint32_t self_ = 0;

  /// The whole group, self included (group_[self_] == this). Non-owning;
  /// create_group's caller keeps the vector alive. This is the
  /// management plane the rkey handover and the attack helpers ride.
  std::vector<DecisionLog*> group_;

  /// One QP per peer (group_[p] ↔ this), both record and ack writes.
  std::vector<std::shared_ptr<verbs::QueuePair>> qp_;
  verbs::CompletionQueue* scq_ = nullptr;
  verbs::CompletionQueue* rcq_ = nullptr;

  // Local (exposed) resources.
  Bytes ring_;  // slot_count framed slots, written by the current primary
  verbs::MemoryRegion* ring_mr_ = nullptr;
  /// Per-peer ack tables: ack_buf_[p] holds peer p's (seq, tag) cells,
  /// cell seq % slot_count. Registered separately so each peer's rkey
  /// maps only its own region (placement authentication).
  std::vector<Bytes> ack_buf_;
  std::vector<verbs::MemoryRegion*> ack_mr_;
  /// Local-only staging span anchoring the protection checks of the
  /// zero-copy record writes (content never read — the payload rides as
  /// refcounted slices, exactly the OneSidedChannel FrameVec path).
  Bytes staging_;
  verbs::MemoryRegion* staging_mr_ = nullptr;

  // Remote targets (exchanged at create_group).
  struct PeerTarget {
    std::uint64_t ring_addr = 0;
    std::uint64_t ack_addr = 0;   // base of *my* region in the peer's table
    std::uint32_t ack_rkey = 0;   // never flipped
  };
  std::vector<PeerTarget> peer_;
  std::vector<std::uint32_t> cached_rkey_;  // last grant seen per peer

  std::uint64_t granted_view_ = 0;
  std::uint64_t wr_seq_ = 0;  // selective-signaling counter

  TransportSelector selector_;
  DecisionLogStats stats_;
};

}  // namespace rubin::nio
