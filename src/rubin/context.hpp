// RubinContext: per-host entry point of the RUBIN library. Owns the
// protection domain and wires channels to the host's device and the
// fabric-wide connection manager.
#pragma once

#include <cstdint>
#include <memory>

#include "rubin/channel.hpp"
#include "rubin/config.hpp"
#include "verbs/cm.hpp"
#include "verbs/device.hpp"

namespace rubin::nio {

class RubinContext {
 public:
  RubinContext(verbs::Device& device, verbs::ConnectionManager& cm)
      : dev_(&device), cm_(&cm) {}
  RubinContext(const RubinContext&) = delete;
  RubinContext& operator=(const RubinContext&) = delete;

  verbs::Device& device() noexcept { return *dev_; }
  verbs::ConnectionManager& cm() noexcept { return *cm_; }
  verbs::ProtectionDomain& pd() noexcept { return pd_; }
  sim::Simulator& simulator() noexcept { return dev_->simulator(); }
  const net::CostModel& cost() const noexcept { return dev_->cost(); }
  net::HostId host() const noexcept { return dev_->host(); }

  /// Binds a listening channel on this host.
  std::shared_ptr<RdmaServerChannel> listen(std::uint16_t port,
                                            ChannelConfig cfg = {});

  /// Opens a client channel to (remote, port). Non-blocking: the returned
  /// channel is kConnecting; kOpAccept readiness (or state() ==
  /// kEstablished) signals completion.
  std::shared_ptr<RdmaChannel> connect(net::HostId remote, std::uint16_t port,
                                       ChannelConfig cfg = {});

 private:
  friend class RdmaChannel;
  friend class RdmaServerChannel;
  std::uint64_t next_id() noexcept { return next_id_++; }

  verbs::Device* dev_;
  verbs::ConnectionManager* cm_;
  verbs::ProtectionDomain pd_;
  std::uint64_t next_id_ = 1;
};

}  // namespace rubin::nio
