#include "rubin/write_channel.hpp"

#include <cstring>
#include <stdexcept>

#include "common/audit.hpp"

namespace rubin::nio {

namespace {
constexpr std::size_t kHeader = 16;  // u32 len | u32 pad | u64 seq

std::uint64_t read_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, 8);
  return v;
}

void write_u64(std::uint8_t* p, std::uint64_t v) { std::memcpy(p, &v, 8); }
}  // namespace

OneSidedChannel::OneSidedChannel(RubinContext& ctx, OneSidedConfig cfg)
    : ctx_(&ctx), cfg_(cfg) {
  auto& dev = ctx.device();
  scq_ = dev.create_cq(4 * cfg.slot_count);
  rcq_ = dev.create_cq(16);
  verbs::QpConfig qc;
  qc.max_send_wr = 2 * cfg.slot_count + 16;  // messages + credit writes
  qp_ = dev.create_qp(ctx.pd(), *scq_, *rcq_, qc);

  ring_.resize(static_cast<std::size_t>(cfg.slot_count) * slot_stride());
  credit_cell_.resize(8);
  bootstrap_buf_.resize(static_cast<std::size_t>(cfg.slot_count) *
                        slot_stride());  // doubles as the send staging ring
  // The §III-C exposure: the inbound ring and the credit cell are
  // remotely writable by anyone holding their rkeys.
  ring_mr_ = ctx.pd().register_memory(
      ring_, verbs::kAccessLocalWrite | verbs::kAccessRemoteWrite);
  credit_mr_ = ctx.pd().register_memory(
      credit_cell_, verbs::kAccessLocalWrite | verbs::kAccessRemoteWrite);
  bootstrap_mr_ = ctx.pd().register_memory(bootstrap_buf_, 0);
}

std::pair<std::unique_ptr<OneSidedChannel>, std::unique_ptr<OneSidedChannel>>
OneSidedChannel::create_pair(RubinContext& a, RubinContext& b,
                             OneSidedConfig cfg) {
  auto ca = std::unique_ptr<OneSidedChannel>(new OneSidedChannel(a, cfg));
  auto cb = std::unique_ptr<OneSidedChannel>(new OneSidedChannel(b, cfg));
  ca->qp_->connect(b.device(), cb->qp_->qp_num());
  cb->qp_->connect(a.device(), ca->qp_->qp_num());
  // Address/rkey exchange (production would run this bootstrap through
  // the CM or one two-sided round; the helper wires it directly).
  ca->remote_ring_addr_ = cb->ring_mr_->addr();
  ca->remote_ring_rkey_ = cb->ring_mr_->rkey();
  ca->remote_credit_addr_ = cb->credit_mr_->addr();
  ca->remote_credit_rkey_ = cb->credit_mr_->rkey();
  cb->remote_ring_addr_ = ca->ring_mr_->addr();
  cb->remote_ring_rkey_ = ca->ring_mr_->rkey();
  cb->remote_credit_addr_ = ca->credit_mr_->addr();
  cb->remote_credit_rkey_ = ca->credit_mr_->rkey();
  return {std::move(ca), std::move(cb)};
}

std::uint64_t OneSidedChannel::credits_available() const noexcept {
  // Same plausibility filter as acquire_credit(), but pure: an implausible
  // (forgeable, §III-C) cell value falls back to the last accepted one.
  const std::uint64_t consumed = read_u64(credit_cell_.data());
  const std::uint64_t plausible =
      (consumed < last_credit_ || consumed > sent_seq_) ? last_credit_
                                                        : consumed;
  const std::uint64_t in_flight = sent_seq_ - plausible;
  return in_flight >= cfg_.slot_count ? 0 : cfg_.slot_count - in_flight;
}

sim::Task<bool> OneSidedChannel::acquire_credit() {
  (void)scq_->poll(16);  // retire old signaled completions (busy-poll mode)

  // Flow control: the peer writes its consumed count into our credit
  // cell; without this check we would overwrite unconsumed slots — the
  // "read/write race resulting in corrupted data" of paper §III-A.
  const std::uint64_t consumed = read_u64(credit_cell_.data());
  // The credit cell is remote-writable memory: a peer can write a value
  // that goes backwards or claims consumption ahead of what we sent.
  // Either is counted (it is the peer's fault, not a local bug) and the
  // flow-control gate below handles it conservatively.
  if (consumed < last_credit_ || consumed > sent_seq_) {
    RUBIN_AUDIT_COUNT("onesided.implausible_credit", 1);
  } else {
    last_credit_ = consumed;
  }
  if (sent_seq_ - consumed >= cfg_.slot_count) {
    ++stats_.no_credit_stalls;
    co_await ctx_->simulator().sleep(ctx_->cost().post_call_cpu);
    co_return false;
  }
  RUBIN_AUDIT_ASSERT("onesided", sent_seq_ - consumed < cfg_.slot_count,
                     "ring slot about to be reused before the peer "
                     "consumed it");
  co_return true;
}

sim::Task<std::size_t> OneSidedChannel::write(ByteView msg) {
  if (msg.size() > cfg_.slot_payload) {
    throw std::invalid_argument("OneSidedChannel::write: message too large");
  }
  if (!co_await acquire_credit()) co_return 0;

  // Stage header + payload in our registered staging slot, then one
  // RDMA WRITE places the whole message in the peer's ring.
  const std::size_t idx = sent_seq_ % cfg_.slot_count;
  std::uint8_t* slot = bootstrap_buf_.data() + idx * slot_stride();
  const std::uint32_t len = static_cast<std::uint32_t>(msg.size());
  std::memcpy(slot, &len, 4);
  std::memset(slot + 4, 0, 4);
  write_u64(slot + 8, sent_seq_ + 1);
  co_await ctx_->simulator().sleep(ctx_->cost().copy_time(msg.size()));
  std::memcpy(slot + kHeader, msg.data(), msg.size());

  verbs::SendWr wr;
  wr.opcode = verbs::Opcode::kRdmaWrite;
  wr.wr_id = sent_seq_;
  wr.sg_list = verbs::Sge{bootstrap_mr_->addr() + idx * slot_stride(),
                          static_cast<std::uint32_t>(kHeader + msg.size()),
                          bootstrap_mr_->lkey()};
  wr.remote_addr = remote_ring_addr_ + idx * slot_stride();
  wr.rkey = remote_ring_rkey_;
  wr.signaled = (++wr_seq_ % 16) == 0;
  const auto r = co_await qp_->post_send_one(wr);
  if (r != verbs::PostResult::kOk) co_return 0;
  ++sent_seq_;
  ++stats_.messages_sent;
  co_return msg.size();
}

sim::Task<std::size_t> OneSidedChannel::write(FrameVec msg) {
  if (msg.total_size() > cfg_.slot_payload) {
    throw std::invalid_argument("OneSidedChannel::write: message too large");
  }
  if (1 + msg.slice_count() > verbs::SgeList::kMaxSges) {
    throw std::invalid_argument(
        "OneSidedChannel::write: frame has too many slices for the SGE list");
  }
  if (!co_await acquire_credit()) co_return 0;

  // Scatter/gather one-sided write: the header is built in a fresh
  // refcounted slice and the payload slices ride as-is — the staging
  // memcpy of the flat path (both its copy_time charge and the physical
  // copy) never happens. The SGE list addresses the staging slot, whose
  // registered address space anchors the protection checks.
  const std::size_t idx = sent_seq_ % cfg_.slot_count;
  const std::uint32_t len = static_cast<std::uint32_t>(msg.total_size());
  SharedBytes header = SharedBytes::allocate(kHeader);
  std::uint8_t* h = header.mutable_data();
  std::memcpy(h, &len, 4);
  std::memset(h + 4, 0, 4);
  write_u64(h + 8, sent_seq_ + 1);

  verbs::SendWr wr;
  wr.opcode = verbs::Opcode::kRdmaWrite;
  wr.wr_id = sent_seq_;
  const std::uint64_t slot_addr = bootstrap_mr_->addr() + idx * slot_stride();
  wr.sg_list = verbs::Sge{slot_addr, static_cast<std::uint32_t>(kHeader),
                          bootstrap_mr_->lkey()};
  std::uint64_t addr = slot_addr + kHeader;
  FrameVec wire(std::move(header));
  for (const SharedBytes& s : msg) {
    wr.sg_list.push_back(verbs::Sge{addr, static_cast<std::uint32_t>(s.size()),
                                    bootstrap_mr_->lkey()});
    addr += s.size();
    wire.append(s);
  }
  wr.shared_payload = std::move(wire);
  wr.remote_addr = remote_ring_addr_ + idx * slot_stride();
  wr.rkey = remote_ring_rkey_;
  wr.signaled = (++wr_seq_ % 16) == 0;
  const auto r = co_await qp_->post_send_one(std::move(wr));
  if (r != verbs::PostResult::kOk) co_return 0;
  ++sent_seq_;
  ++stats_.messages_sent;
  co_return msg.total_size();
}

sim::Task<std::size_t> OneSidedChannel::read(MutByteView out) {
  const std::size_t idx = recv_seq_ % cfg_.slot_count;
  const std::uint8_t* slot = ring_.data() + idx * slot_stride();
  if (read_u64(slot + 8) != recv_seq_ + 1) {
    // Nothing new; polling still costs a cache probe's worth of CPU.
    co_await ctx_->simulator().sleep(ctx_->cost().post_call_cpu);
    co_return 0;
  }
  std::uint32_t len = 0;
  std::memcpy(&len, slot, 4);
  // A corrupted length (ring memory is remotely writable!) is clamped so
  // it cannot read out of bounds; the *payload* may still be garbage —
  // exactly why Reptor layers HMACs on top (paper §III-C).
  len = std::min<std::uint32_t>(len, static_cast<std::uint32_t>(cfg_.slot_payload));
  if (out.size() < len) {
    throw std::invalid_argument("OneSidedChannel::read: buffer too small");
  }
  co_await ctx_->simulator().sleep(ctx_->cost().copy_time(len));
  std::memcpy(out.data(), slot + kHeader, len);
  ++recv_seq_;
  ++stats_.messages_received;

  RUBIN_AUDIT_ASSERT("onesided", recv_seq_ >= credited_seq_,
                     "credited more consumption than actually consumed");
  if (recv_seq_ - credited_seq_ >= cfg_.credit_interval) {
    co_await return_credits();
  }
  // Credit-return cadence: falling further behind than one interval
  // means the peer will stall on a full ring for no reason.
  RUBIN_AUDIT_ASSERT("onesided",
                     recv_seq_ - credited_seq_ < cfg_.credit_interval,
                     "credit return fell behind its cadence");
  co_return len;
}

sim::Task<void> OneSidedChannel::return_credits() {
  // One-sided credit return: write our consumed count into the peer's
  // credit cell. Staged in our credit_cell_'s sibling… the cell itself is
  // local-write too, so reuse it as the source (it already holds what the
  // peer wrote to us — use a small dedicated staging in the slot header
  // area instead: the first 8 bytes of our staging ring are always free
  // to carry the counter because slot 0's header is rewritten per send).
  // Simpler and race-free: a tiny dedicated staging buffer.
  credited_seq_ = recv_seq_;
  ++stats_.credit_writes;

  // Stage the counter at the tail of the staging ring (never used by
  // message slots because indices stay < slot_count).
  static_assert(sizeof(std::uint64_t) == 8);
  std::uint8_t scratch[8];
  write_u64(scratch, recv_seq_);
  // Inline write: 8 bytes ride in the WQE itself, no staging needed.
  verbs::SendWr wr;
  wr.opcode = verbs::Opcode::kRdmaWrite;
  wr.wr_id = 0xC3ED17;
  wr.inline_data = true;
  wr.sg_list = verbs::Sge{reinterpret_cast<std::uint64_t>(scratch), 8, 0};
  wr.remote_addr = remote_credit_addr_;
  wr.rkey = remote_credit_rkey_;
  wr.signaled = false;
  (void)co_await qp_->post_send_one(wr);
}

sim::Task<std::size_t> OneSidedChannel::read_await(MutByteView out) {
  for (;;) {
    const std::size_t n = co_await read(out);
    if (n > 0) co_return n;
    co_await ctx_->simulator().sleep(cfg_.poll_interval);
  }
}

}  // namespace rubin::nio
