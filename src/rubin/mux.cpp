#include "rubin/mux.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/audit.hpp"

namespace rubin::nio {

namespace {
/// wr_id of inline replies — no staging slot to release at completion.
constexpr std::uint64_t kInlineWr = ~0ULL;
/// Staging-slot wr_ids are offset by one: wr_id 0 is reserved because the
/// transport-retry watchdog completes with it, and releasing slot 0 for a
/// watchdog completion would corrupt the pool.
constexpr std::uint64_t kSlotBase = 1;
}  // namespace

std::shared_ptr<MuxAcceptor> MuxAcceptor::listen(RubinContext& ctx,
                                                 std::uint16_t port,
                                                 MuxConfig cfg) {
  auto mux = std::shared_ptr<MuxAcceptor>(new MuxAcceptor(ctx, cfg));
  mux->start(port);
  return mux;
}

void MuxAcceptor::start(std::uint16_t port) {
  auto& dev = ctx_->device();
  if (cfg_.inline_threshold > dev.max_inline()) {
    throw std::invalid_argument(
        "MuxConfig: inline_threshold exceeds the device max_inline");
  }
  comp_channel_ = dev.create_channel();
  // The receive CQ must absorb every posted WR completing before one pump
  // runs (a full SRQ flushing at once is the worst case).
  send_cq_ = dev.create_cq(cfg_.cq_depth, comp_channel_);
  recv_cq_ = dev.create_cq(
      std::max<std::size_t>(cfg_.cq_depth, 2 * cfg_.srq_depth),
      comp_channel_);

  send_pool_ = std::make_unique<BufferPool>(ctx_->pd(), cfg_.send_pool_slots,
                                            cfg_.buffer_size, 0u);
  if (cfg_.use_srq) {
    srq_ = dev.create_srq(verbs::SrqConfig{cfg_.srq_depth, 0});
    recv_pool_ = std::make_unique<BufferPool>(ctx_->pd(), cfg_.srq_depth,
                                              cfg_.buffer_size,
                                              verbs::kAccessLocalWrite);
    std::vector<verbs::RecvWr> wrs;
    wrs.reserve(cfg_.srq_depth);
    for (std::uint32_t slot = 0; slot < cfg_.srq_depth; ++slot) {
      wrs.push_back(recv_wr(*recv_pool_, slot));
    }
    (void)srq_->post_now(std::move(wrs));
    // Low watermark: a burst that outruns the batched read()-side refill
    // re-posts everything pending at once, then re-arms.
    std::weak_ptr<MuxAcceptor> self = weak_from_this();
    srq_->set_limit_handler([self] {
      auto mux = self.lock();
      if (!mux || mux->closed_) return;
      if (!mux->pending_slots_.empty()) {
        std::vector<verbs::RecvWr> refill;
        refill.reserve(mux->pending_slots_.size());
        for (const std::uint32_t slot : mux->pending_slots_) {
          refill.push_back(mux->recv_wr(*mux->recv_pool_, slot));
        }
        mux->pending_slots_.clear();
        (void)mux->srq_->post_now(std::move(refill));
      }
      mux->srq_->arm_limit(mux->cfg_.srq_limit);
    });
    srq_->arm_limit(cfg_.srq_limit);
  }

  std::weak_ptr<MuxAcceptor> self = weak_from_this();
  comp_channel_->set_sink([self](verbs::CompletionQueue*) {
    if (auto mux = self.lock()) mux->pump();
  });
  send_cq_->req_notify();
  recv_cq_->req_notify();

  listener_ = ctx_->cm().listen(ctx_->host(), port, [self](
                                                        const verbs::CmEvent& e) {
    auto mux = self.lock();
    if (!mux || mux->closed_) return;
    switch (e.type) {
      case verbs::CmEventType::kConnectRequest:
        mux->on_connect_request(e);
        break;
      case verbs::CmEventType::kDisconnected:
        mux->on_disconnected(e);
        break;
      case verbs::CmEventType::kEstablished:
      case verbs::CmEventType::kRejected:
        break;
    }
  });
}

verbs::RecvWr MuxAcceptor::recv_wr(BufferPool& pool,
                                   std::uint32_t slot) const {
  // capture_payload: the slot backs the WR (flow control and DMA charges
  // are pool-shaped) but the inbound bytes arrive as a refcounted handle,
  // so the slot is recyclable the moment its completion is pumped.
  return verbs::RecvWr{
      slot, pool.sge(slot, static_cast<std::uint32_t>(cfg_.buffer_size)),
      /*capture_payload=*/true};
}

void MuxAcceptor::on_connect_request(const verbs::CmEvent& e) {
  verbs::QpConfig qc;
  qc.max_send_wr = cfg_.max_send_wr;
  qc.max_recv_wr = cfg_.per_conn_recv;
  qc.max_inline = static_cast<std::uint32_t>(cfg_.inline_threshold);
  qc.transport_retry_timeout_ns = cfg_.transport_retry_timeout_ns;
  if (cfg_.use_srq) qc.srq = srq_;
  auto qp = ctx_->device().create_qp(ctx_->pd(), *send_cq_, *recv_cq_, qc);

  const std::uint64_t index = conns_.size();
  Conn conn;
  conn.qp = qp;
  conn.cm_conn = e.conn_id;
  if (!cfg_.use_srq) {
    conn.recv_pool = std::make_unique<BufferPool>(
        ctx_->pd(), cfg_.per_conn_recv, cfg_.buffer_size,
        verbs::kAccessLocalWrite);
    std::vector<verbs::RecvWr> wrs;
    wrs.reserve(cfg_.per_conn_recv);
    for (std::uint32_t slot = 0; slot < cfg_.per_conn_recv; ++slot) {
      wrs.push_back(recv_wr(*conn.recv_pool, slot));
    }
    (void)qp->post_recv_now(std::move(wrs));
  }
  conn_by_qpn_[qp->qp_num()] = index;
  conn_by_cm_[e.conn_id] = index;
  conns_.push_back(std::move(conn));
  ++live_conns_;
  listener_->accept(e.conn_id, std::move(qp));
}

void MuxAcceptor::on_disconnected(const verbs::CmEvent& e) {
  const auto it = conn_by_cm_.find(e.conn_id);
  if (it == conn_by_cm_.end()) return;
  Conn& conn = conns_[it->second];
  if (conn.open) {
    conn.open = false;
    --live_conns_;
  }
}

void MuxAcceptor::pump() {
  if (closed_) return;
  for (;;) {
    const auto cs = send_cq_->poll(64);
    if (cs.empty()) break;
    for (const verbs::Completion& c : cs) {
      if (c.wr_id != kInlineWr && c.wr_id >= kSlotBase) {
        send_pool_->release(static_cast<std::uint32_t>(c.wr_id - kSlotBase));
      }
      if (c.status != verbs::WcStatus::kSuccess) {
        const auto it = conn_by_qpn_.find(c.qp_num);
        if (it != conn_by_qpn_.end() && conns_[it->second].open) {
          conns_[it->second].open = false;
          --live_conns_;
        }
      }
    }
  }
  for (;;) {
    const auto cs = recv_cq_->poll(64);
    if (cs.empty()) break;
    for (const verbs::Completion& c : cs) {
      if (c.status != verbs::WcStatus::kSuccess) {
        // Flushed SRQ WR of a torn-down QP: the slot is shared property,
        // reclaim it for the survivors. Per-QP slots die with their ring.
        if (cfg_.use_srq) {
          pending_slots_.push_back(static_cast<std::uint32_t>(c.wr_id));
        }
        continue;
      }
      const auto it = conn_by_qpn_.find(c.qp_num);
      if (it == conn_by_qpn_.end()) continue;
      if (cfg_.use_srq) {
        pending_slots_.push_back(static_cast<std::uint32_t>(c.wr_id));
      } else {
        pending_per_qp_.emplace_back(it->second,
                                     static_cast<std::uint32_t>(c.wr_id));
      }
      inbox_.push_back(MuxMessage{it->second, c.payload});
      ++messages_received_;
    }
  }
  RUBIN_AUDIT_ASSERT("mux", !send_cq_->overflowed() && !recv_cq_->overflowed(),
                     "mux shared CQ overflowed — size cq_depth for the burst");
  send_cq_->req_notify();
  recv_cq_->req_notify();
  if (!inbox_.empty()) {
    arrival_.set();
    arrival_.reset();  // edge semantics: wake current waiters only
  }
}

sim::Task<void> MuxAcceptor::refill(std::vector<std::uint32_t> slots) {
  std::vector<verbs::RecvWr> wrs;
  wrs.reserve(slots.size());
  for (const std::uint32_t slot : slots) {
    wrs.push_back(recv_wr(*recv_pool_, slot));
  }
  (void)co_await srq_->post(std::span<const verbs::RecvWr>(wrs));
}

sim::Task<MuxMessage> MuxAcceptor::read() {
  for (;;) {
    if (!inbox_.empty()) {
      MuxMessage msg = std::move(inbox_.front());
      inbox_.pop_front();
      if (cfg_.use_srq) {
        if (pending_slots_.size() >= cfg_.refill_batch) {
          std::vector<std::uint32_t> batch = std::move(pending_slots_);
          pending_slots_.clear();
          co_await refill(std::move(batch));
        }
      } else if (!pending_per_qp_.empty()) {
        const auto [conn, slot] = pending_per_qp_.front();
        pending_per_qp_.pop_front();
        Conn& c = conns_[conn];
        if (c.open && c.qp->state() == verbs::QpState::kReadyToSend) {
          const verbs::RecvWr wr = recv_wr(*c.recv_pool, slot);
          (void)co_await c.qp->post_recv(
              std::span<const verbs::RecvWr>(&wr, 1));
        }
      }
      co_return msg;
    }
    co_await arrival_.wait();
  }
}

sim::Task<std::size_t> MuxAcceptor::reply(std::uint64_t conn,
                                          SharedBytes payload) {
  if (closed_ || conn >= conns_.size()) co_return 0;
  Conn& c = conns_[conn];
  if (!c.open || c.qp->state() != verbs::QpState::kReadyToSend ||
      c.qp->send_slots_free() == 0) {
    ++reply_backpressure_;
    co_return 0;
  }
  if (payload.size() > cfg_.buffer_size) {
    throw std::invalid_argument("MuxAcceptor::reply: payload exceeds buffer_size");
  }

  verbs::SendWr wr;
  wr.opcode = verbs::Opcode::kSend;
  wr.signaled = true;  // acks are sparse per QP; no selective-signal ring
  const std::size_t n = payload.size();
  if (cfg_.inline_threshold > 0 && n <= cfg_.inline_threshold) {
    wr.inline_data = true;
    wr.wr_id = kInlineWr;
    wr.sg_list =
        verbs::Sge{reinterpret_cast<std::uint64_t>(payload.data()),
                   static_cast<std::uint32_t>(n), 0};
    wr.shared_payload.append(payload);
  } else {
    // The staging slot donates registered address space; the refcounted
    // handle rides the WR (zero-copy), so the slot's bytes stay cold.
    const auto slot = send_pool_->acquire();
    if (!slot) {
      ++reply_backpressure_;
      co_return 0;
    }
    wr.wr_id = kSlotBase + *slot;
    wr.sg_list = send_pool_->sge(*slot, static_cast<std::uint32_t>(n));
    wr.shared_payload.append(payload);
  }
  const std::uint64_t posted_id = wr.wr_id;
  const auto result = co_await c.qp->post_send_one(std::move(wr));
  if (result != verbs::PostResult::kOk) {
    if (posted_id != kInlineWr) {
      send_pool_->release(static_cast<std::uint32_t>(posted_id - kSlotBase));
    }
    ++reply_backpressure_;
    co_return 0;
  }
  ++replies_sent_;
  co_return n;
}

std::uint64_t MuxAcceptor::receive_state_bytes() const noexcept {
  if (cfg_.use_srq) {
    return static_cast<std::uint64_t>(cfg_.srq_depth) * cfg_.buffer_size;
  }
  std::uint64_t total = 0;
  for (const Conn& c : conns_) {
    if (c.recv_pool != nullptr) {
      total += static_cast<std::uint64_t>(c.recv_pool->count()) *
               c.recv_pool->slot_size();
    }
  }
  return total;
}

void MuxAcceptor::close() {
  if (closed_) return;
  closed_ = true;
  for (Conn& c : conns_) {
    if (c.open) {
      c.open = false;
      --live_conns_;
      ctx_->cm().disconnect(c.cm_conn);
    }
  }
}

}  // namespace rubin::nio
