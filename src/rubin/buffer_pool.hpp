// Pre-registered buffer pool (paper §IV: "A pool of buffers for send and
// receive requests are pre-registered and can be reused as needed").
//
// One slab, one memory registration, fixed-size slots. Slot indices double
// as work-request ids so completions map back to buffers in O(1).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "verbs/memory.hpp"

namespace rubin::nio {

class BufferPool {
 public:
  /// Registers count*size bytes in `pd` with `access` flags.
  BufferPool(verbs::ProtectionDomain& pd, std::uint32_t count,
             std::size_t size, std::uint32_t access);
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  std::uint32_t count() const noexcept { return count_; }
  std::size_t slot_size() const noexcept { return size_; }
  std::uint32_t free_count() const noexcept {
    return static_cast<std::uint32_t>(free_.size());
  }

  /// Takes a free slot; nullopt when exhausted.
  std::optional<std::uint32_t> acquire();
  void release(std::uint32_t slot);

  /// Slots handed out by acquire() and not yet released.
  std::uint32_t acquired_count() const noexcept { return count_ - free_count(); }

  /// SGE covering `len` bytes of `slot`.
  verbs::Sge sge(std::uint32_t slot, std::uint32_t len) const;
  /// Writable view of a slot's memory.
  MutByteView view(std::uint32_t slot);
  ByteView view(std::uint32_t slot, std::size_t len) const;

 private:
  verbs::ProtectionDomain* pd_;
  Bytes slab_;
  verbs::MemoryRegion* mr_;
  std::uint32_t count_;
  std::size_t size_;
  std::vector<std::uint32_t> free_;
  /// Audit: per-slot lifecycle state (0 = free, 1 = acquired). Detects
  /// double release and leak-at-destruction; maintained unconditionally
  /// (one byte per slot), checked only under RUBIN_AUDIT.
  std::vector<std::uint8_t> slot_state_;
};

}  // namespace rubin::nio
