#include "rubin/transport_select.hpp"

#include <array>

#include "common/audit.hpp"

namespace rubin::nio {

namespace {

/// OneSidedChannel's slot header (u32 len | u32 pad | u64 seq): the extra
/// bytes a mailbox write carries per frame.
constexpr std::size_t kMailboxHeaderBytes = 16;
/// A one-sided READ request frame (header-only, matches the verbs
/// device's wire accounting for kRdmaRead).
constexpr std::size_t kReadRequestBytes = 28;

}  // namespace

sim::Time TransportSelector::cost_of(TransportKind kind,
                                     const SelectorInputs& in) const {
  const net::CostModel& c = *cost_;
  const std::size_t p = in.payload;
  // Posting one WR from the sending thread through the NIC's WQE pipeline.
  const sim::Time post =
      c.post_call_cpu + c.wqe_build_cpu + c.doorbell + c.wqe_processing;
  // One wire transit of `bytes` of payload.
  const auto transit = [&c](std::size_t bytes) {
    return c.wire_serialization(bytes + c.frame_overhead_bytes) +
           c.propagation;
  };
  // Two-sided delivery: receive match, CQE, completion *event* through
  // the kernel, the app's ack + wakeup, and the receive-side copy-out
  // the paper measures (§IV).
  const sim::Time event_delivery = c.recv_match_cost + c.cqe_cost +
                                   c.completion_event_cost + c.event_ack_cpu +
                                   c.thread_wakeup + c.copy_time(p);
  // One-sided delivery: no events — the receiver detects the landed
  // bytes by polling (half an interval in expectation, plus the probe)
  // and copies them out of the ring.
  const sim::Time poll_delivery =
      in.recv_poll_interval / 2 + c.post_call_cpu + c.copy_time(p);

  switch (kind) {
    case TransportKind::kInline:
      // The CPU gathers the payload into the WQE (no payload DMA fetch).
      return post + c.copy_time(p) + transit(p) + c.dma_time(p) +
             event_delivery;
    case TransportKind::kSendRecv:
      // The NIC fetches the payload from host memory on both ends.
      return post + c.dma_fetch_latency + c.dma_time(p) + transit(p) +
             c.dma_time(p) + event_delivery;
    case TransportKind::kWrite: {
      // Mailbox write: pays the slot header on the DMA and the wire,
      // saves the whole completion-event chain on the receiver.
      const std::size_t w = p + kMailboxHeaderBytes;
      return post + c.dma_fetch_latency + c.dma_time(w) + transit(w) +
             c.dma_time(w) + poll_delivery;
    }
    case TransportKind::kReadDrain:
      // Receiver-driven pull: the *receiver* posts a READ, so the frame
      // pays a request transit and the responder NIC's turnaround before
      // the payload even starts — strictly worse on latency, but it
      // consumes no sender-side send slot or ring credit.
      return post + transit(kReadRequestBytes) + c.read_turnaround +
             c.dma_time(p) + transit(p) + c.dma_time(p) + c.cqe_cost +
             poll_delivery;
  }
  return 0;  // unreachable; keeps -Wreturn-type quiet across compilers
}

bool TransportSelector::available(TransportKind kind,
                                  const SelectorInputs& in) const {
  switch (kind) {
    case TransportKind::kInline:
      return in.payload <= cost_->max_inline && in.send_slots_free > 0;
    case TransportKind::kSendRecv:
      return in.send_slots_free > 0;
    case TransportKind::kWrite:
      return in.ring_credits > 0;
    case TransportKind::kReadDrain:
      return true;
  }
  return false;
}

TransportKind TransportSelector::pick(const SelectorInputs& in) const {
  TransportKind best = policy_.fixed;
  if (policy_.mode == TransportPolicy::Mode::kAdaptive) {
    // Literal argmin over the available kinds, evaluated in declaration
    // order with strict < — the earliest enum wins ties. kReadDrain is
    // always available, so the loop always finds a kind.
    constexpr std::array<TransportKind, 4> kKinds = {
        TransportKind::kInline, TransportKind::kSendRecv,
        TransportKind::kWrite, TransportKind::kReadDrain};
    bool have = false;
    sim::Time best_cost = 0;
    for (const TransportKind k : kKinds) {
      if (!available(k, in)) continue;
      const sim::Time t = cost_of(k, in);
      if (!have || t < best_cost) {
        have = true;
        best_cost = t;
        best = k;
      }
    }
  }
  switch (best) {
    case TransportKind::kInline:
      RUBIN_AUDIT_COUNT("transport.pick.inline", 1);
      break;
    case TransportKind::kSendRecv:
      RUBIN_AUDIT_COUNT("transport.pick.send_recv", 1);
      break;
    case TransportKind::kWrite:
      RUBIN_AUDIT_COUNT("transport.pick.write", 1);
      break;
    case TransportKind::kReadDrain:
      RUBIN_AUDIT_COUNT("transport.pick.read", 1);
      break;
  }
  return best;
}

std::size_t TransportSelector::inline_crossover() const {
  // The cost difference inline-vs-send/recv is affine in the payload
  // (copy_time vs dma_fetch + dma_time), so binary search is exact.
  SelectorInputs in;
  in.send_slots_free = 1;
  std::size_t lo = 0;
  std::size_t hi = cost_->max_inline;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo + 1) / 2;
    in.payload = mid;
    if (cost_of(TransportKind::kInline, in) <=
        cost_of(TransportKind::kSendRecv, in)) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return lo;
}

std::size_t TransportSelector::write_crossover() const {
  // Affine difference again; search the smallest payload where the
  // mailbox write is no costlier than send/receive, up to 1 MiB.
  constexpr std::size_t kLimit = 1 << 20;
  SelectorInputs in;
  in.send_slots_free = 1;
  in.ring_credits = 1;
  const auto write_wins = [&](std::size_t p) {
    in.payload = p;
    return cost_of(TransportKind::kWrite, in) <=
           cost_of(TransportKind::kSendRecv, in);
  };
  if (write_wins(0)) return 0;
  if (!write_wins(kLimit)) return kLimit;  // never within the search range
  std::size_t lo = 0;   // write loses here
  std::size_t hi = kLimit;  // write wins here
  while (lo + 1 < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    (write_wins(mid) ? hi : lo) = mid;
  }
  return hi;
}

const char* to_string(TransportKind kind) noexcept {
  switch (kind) {
    case TransportKind::kInline:
      return "inline";
    case TransportKind::kSendRecv:
      return "send_recv";
    case TransportKind::kWrite:
      return "write";
    case TransportKind::kReadDrain:
      return "read";
  }
  return "?";
}

}  // namespace rubin::nio
