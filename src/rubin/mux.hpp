// MuxAcceptor — the many-connections server endpoint (ROADMAP: "shared
// receive queues and QP multiplexing").
//
// An RdmaServerChannel gives every accepted client a fully-provisioned
// RdmaChannel: two CQs, a completion channel, and send+receive buffer
// pools of buffer_count × buffer_size bytes each. At datacenter client
// counts that per-connection receive state is the scalability wall
// (RDMAvisor, PAPERS.md). The mux keeps one QP per client — RC needs it —
// but shares everything else across the population:
//
//   * one completion channel + one send CQ + one receive CQ (the shared
//     selector key: one event pump for every connection);
//   * receives from one SharedReceiveQueue backed by one shared pool, so
//     receive memory scales with SRQ depth, not client count
//     (MuxConfig::use_srq = false keeps small per-QP rings instead — the
//     baseline the scalability bench compares against);
//   * a dense connection table mapping conn index <-> QP, with inbound
//     messages surfaced as (conn, payload) pairs from one inbox.
//
// Flow control: every message read returns its receive slot to a pending
// list that read() re-posts in charged batches; the SRQ low watermark
// (srq_limit) is the burst safety net — crossing it immediately re-posts
// everything pending and re-arms.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "common/shared_bytes.hpp"
#include "rubin/buffer_pool.hpp"
#include "rubin/context.hpp"
#include "sim/event.hpp"
#include "sim/task.hpp"
#include "verbs/cm.hpp"
#include "verbs/device.hpp"

namespace rubin::nio {

struct MuxConfig {
  /// Shared receive path (the tentpole). false = per-connection receive
  /// rings of per_conn_recv buffers — the per-QP baseline.
  bool use_srq = true;
  /// Shared-pool depth: receive WRs (and buffers) for the whole population.
  std::uint32_t srq_depth = 1024;
  /// Low watermark: crossing it re-posts every pending slot and re-arms.
  std::uint32_t srq_limit = 64;
  /// read() re-posts consumed slots in charged batches of this size.
  std::uint32_t refill_batch = 16;
  /// Per-connection ring depth when use_srq is off.
  std::uint32_t per_conn_recv = 8;
  /// Bytes per receive slot (the population's maximum request size).
  std::size_t buffer_size = 2048;
  /// Per-connection send window (replies are small; keep it shallow).
  std::uint32_t max_send_wr = 16;
  /// Shared send-staging pool slots (bounds replies in flight across the
  /// whole population).
  std::uint32_t send_pool_slots = 256;
  /// Replies at or below this ride inline in the WQE.
  std::size_t inline_threshold = 256;
  /// Shared CQ capacity. Must absorb a full burst: every posted receive
  /// plus every in-flight reply can complete before one pump runs.
  std::size_t cq_depth = 8192;
  /// RC transport-retry budget for accepted QPs (0 disables; population
  /// QPs sit idle between bursts, so the watchdog only covers replies).
  std::int64_t transport_retry_timeout_ns = 50 * 1000 * 1000;
};

/// One inbound request, routed back to the connection that sent it.
struct MuxMessage {
  std::uint64_t conn = 0;
  SharedBytes payload;
};

class MuxAcceptor : public std::enable_shared_from_this<MuxAcceptor> {
 public:
  /// Binds the acceptor on `port` of the context's host. Every connection
  /// request is accepted automatically (the population server has no
  /// admission policy).
  static std::shared_ptr<MuxAcceptor> listen(RubinContext& ctx,
                                             std::uint16_t port,
                                             MuxConfig cfg = {});

  const MuxConfig& config() const noexcept { return cfg_; }

  /// Awaits the next inbound message (FIFO across every connection) and
  /// re-posts consumed receive slots in charged batches.
  sim::Task<MuxMessage> read();

  std::size_t readable_messages() const noexcept { return inbox_.size(); }

  /// Sends a reply on `conn`. Returns payload.size(), or 0 under
  /// backpressure (send window or staging pool exhausted — callers drop
  /// or retry; the population protocol treats a lost ack as a timeout).
  sim::Task<std::size_t> reply(std::uint64_t conn, SharedBytes payload);

  std::size_t connection_count() const noexcept { return conns_.size(); }
  std::size_t live_connections() const noexcept { return live_conns_; }
  std::uint64_t messages_received() const noexcept { return messages_received_; }
  std::uint64_t replies_sent() const noexcept { return replies_sent_; }
  std::uint64_t reply_backpressure() const noexcept {
    return reply_backpressure_;
  }

  /// Bytes of receive-buffer state provisioned for the population — the
  /// scalability bench's memory-per-connection numerator. SRQ mode: the
  /// one shared pool. Per-QP mode: per_conn_recv × buffer_size per
  /// accepted connection.
  std::uint64_t receive_state_bytes() const noexcept;

  void close();

 private:
  struct Conn {
    std::shared_ptr<verbs::QueuePair> qp;
    std::uint64_t cm_conn = 0;
    /// Per-QP mode only: this connection's private receive ring.
    std::unique_ptr<BufferPool> recv_pool;
    bool open = true;
  };

  MuxAcceptor(RubinContext& ctx, MuxConfig cfg) : ctx_(&ctx), cfg_(cfg) {}

  void start(std::uint16_t port);
  void on_connect_request(const verbs::CmEvent& e);
  void on_disconnected(const verbs::CmEvent& e);
  /// Drains both shared CQs into the inbox / slot accounting and re-arms.
  void pump();
  sim::Task<void> refill(std::vector<std::uint32_t> slots);
  /// wr_id encoding for receive WRs: SRQ mode uses the shared pool slot;
  /// per-QP mode uses the connection's private slot (the QP disambiguates).
  verbs::RecvWr recv_wr(BufferPool& pool, std::uint32_t slot) const;

  RubinContext* ctx_;
  MuxConfig cfg_;
  std::shared_ptr<verbs::CmListener> listener_;
  verbs::SharedReceiveQueue* srq_ = nullptr;
  verbs::CompletionChannel* comp_channel_ = nullptr;
  verbs::CompletionQueue* send_cq_ = nullptr;
  verbs::CompletionQueue* recv_cq_ = nullptr;
  /// Shared receive pool (SRQ mode) and reply-staging pool (both modes).
  std::unique_ptr<BufferPool> recv_pool_;
  std::unique_ptr<BufferPool> send_pool_;

  /// Connection table: dense index == MuxMessage::conn.
  std::vector<Conn> conns_;
  std::map<std::uint32_t, std::uint64_t> conn_by_qpn_;
  std::map<std::uint64_t, std::uint64_t> conn_by_cm_;
  std::size_t live_conns_ = 0;

  std::deque<MuxMessage> inbox_;
  /// Receive slots consumed but not yet re-posted. SRQ mode: shared pool
  /// slots. Per-QP mode: unused (slots re-post per connection in read()).
  std::vector<std::uint32_t> pending_slots_;
  /// Per-QP mode: (conn, slot) of the message just read, re-posted by the
  /// next read() call.
  std::deque<std::pair<std::uint64_t, std::uint32_t>> pending_per_qp_;

  sim::Event arrival_{ctx_->simulator()};
  std::uint64_t messages_received_ = 0;
  std::uint64_t replies_sent_ = 0;
  std::uint64_t reply_backpressure_ = 0;
  bool closed_ = false;
};

}  // namespace rubin::nio
