// Per-frame transport selection (DESIGN.md §11).
//
// The paper fixes one primitive per connection — two-sided send/receive
// behind the channel abstraction — and documents what that choice costs
// against one-sided read/write (§III, Fig. 3). This selector makes the
// choice per *frame* instead: given the payload size and the live
// resource state (send-queue headroom, mailbox ring credits), it picks
// the primitive the calibrated cost model says is cheapest right now.
//
// The contract is deliberately austere so it can be property-tested:
//   * cost_of() is a pure function of (kind, inputs) composed only of
//     net::CostModel terms — no magic latency numbers live here;
//   * pick() under kAdaptive is the literal argmin of cost_of over the
//     kinds whose resources are available(), ties broken toward the
//     smallest enum value (evaluation in declaration order, strict <);
//   * pick() under kFixed returns TransportPolicy::fixed unconditionally,
//     which is how every pre-existing configuration reproduces
//     bit-identically — the selector only *observes* in that mode.
//
// Every pick fires one transport.pick.* audit counter, so a run's
// transport mix is auditable after the fact (and rubinlint's audit-xref
// keeps the counter names test-asserted).
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/cost_model.hpp"
#include "rubin/config.hpp"
#include "sim/time.hpp"

namespace rubin::nio {

/// Sender-side observables the selector may consult for one frame.
struct SelectorInputs {
  std::size_t payload = 0;
  /// Free send-queue slots on the two-sided QP (gates kInline/kSendRecv;
  /// see RdmaChannel::send_slots_free()).
  std::uint32_t send_slots_free = 0;
  /// One-sided mailbox slots the peer has not yet consumed-and-credited
  /// (gates kWrite; see OneSidedChannel::credits_available()).
  std::uint64_t ring_credits = 0;
  /// The mailbox receiver's poll granularity; a one-sided delivery is
  /// detected, in expectation, half an interval after it lands.
  sim::Time recv_poll_interval = sim::microseconds(1.0);
};

class TransportSelector {
 public:
  /// `cost` is held by reference — it must outlive the selector (pass the
  /// context's model, not a temporary).
  TransportSelector(const net::CostModel& cost, TransportPolicy policy)
      : cost_(&cost), policy_(policy) {}

  /// The pick (see the file comment for the exact contract). Fires the
  /// matching transport.pick.* audit counter in either mode.
  TransportKind pick(const SelectorInputs& in) const;

  /// Modeled one-way delivery latency of `kind` for these inputs: sender
  /// CPU + NIC + wire + receiver-side cost up to application delivery.
  /// Pure — composed exclusively of net::CostModel terms.
  sim::Time cost_of(TransportKind kind, const SelectorInputs& in) const;

  /// Resource gate: whether `kind` can carry this frame at all. kInline
  /// needs the payload within the device inline cap and a send slot;
  /// kSendRecv needs a send slot; kWrite needs a ring credit; kReadDrain
  /// (receiver-driven pull) is always available — it is the escape hatch
  /// when the sender's resources are exhausted.
  bool available(TransportKind kind, const SelectorInputs& in) const;

  /// Largest payload for which the inline WQE copy undercuts the DMA
  /// fetch of a non-inline send, clamped by the device inline capacity.
  /// Under the roce_10g model the cap binds (the raw copy-vs-DMA
  /// crossover sits near 3 KB, well above max_inline).
  std::size_t inline_crossover() const;

  /// Smallest payload at which a one-sided write undercuts two-sided
  /// send/receive (0 when it always does — the roce_10g answer: skipping
  /// the completion-event chain beats the mailbox header at every size,
  /// the paper's "lowest latency of all modes").
  std::size_t write_crossover() const;

  const TransportPolicy& policy() const noexcept { return policy_; }

 private:
  const net::CostModel* cost_;
  TransportPolicy policy_;
};

/// Display name: the transport.pick.* counter suffix ("inline",
/// "send_recv", "write", "read").
const char* to_string(TransportKind kind) noexcept;

}  // namespace rubin::nio
