// RdmaChannel / RdmaServerChannel — the RUBIN abstractions of the Java NIO
// SocketChannel / ServerSocketChannel over RDMA queue pairs (paper §III-B).
//
// A channel is message-oriented (one message == one work request == one
// pooled buffer), non-blocking (read/write transfer what they can and
// return), and carries a unique connection identifier the selector uses to
// match events to channels. All §IV optimizations live here:
//   * pre-registered send/receive buffer pools, receives pre-posted;
//   * batched WR posting (write_batch -> one doorbell);
//   * selective signaling (signal every Nth send, reclaim in order);
//   * inline sends below a threshold;
//   * cached registration of application send buffers (zero-copy send);
//   * the receive-side copy the paper identifies as the large-message
//     bottleneck — removable with ChannelConfig::zero_copy_receive to
//     measure the paper's planned future optimization.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "common/ring_buffer.hpp"
#include "common/shared_bytes.hpp"
#include "rubin/buffer_pool.hpp"
#include "rubin/config.hpp"
#include "sim/event.hpp"
#include "sim/task.hpp"
#include "verbs/cm.hpp"
#include "verbs/device.hpp"

namespace rubin::nio {

class RubinContext;
class RdmaSelector;
class RdmaServerChannel;

/// Channel statistics for the ablation benches.
struct ChannelStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t inline_sends = 0;
  std::uint64_t zero_copy_sends = 0;
  std::uint64_t pool_copy_sends = 0;
  std::uint64_t signaled_completions = 0;
  std::uint64_t doorbells = 0;
  std::uint64_t send_registrations = 0;  // zero-copy cache misses
  std::uint64_t receive_copies = 0;
  /// Multi-slice frames posted as true scatter/gather SGE lists — the
  /// sends where the old per-message gather memcpy no longer happens.
  std::uint64_t gather_sends = 0;
};

class RdmaChannel : public std::enable_shared_from_this<RdmaChannel> {
 public:
  enum class State : std::uint8_t { kConnecting, kEstablished, kClosed };

  State state() const noexcept { return state_; }
  bool is_open() const noexcept { return state_ != State::kClosed; }
  /// Unique connection identifier (paper: "every created channel is
  /// associated with a unique connection identifier").
  std::uint64_t id() const noexcept { return id_; }
  const ChannelConfig& config() const noexcept { return cfg_; }
  const ChannelStats& stats() const noexcept { return stats_; }
  net::HostId remote_host() const noexcept { return qp_->remote_host(); }

  /// Sends one message. Returns msg.size() on success, 0 when the channel
  /// is not established or out of send capacity (retry on kOpSend
  /// readiness). Throws std::invalid_argument for messages larger than
  /// the configured buffer size.
  ///
  /// Lifetime: with zero_copy_send (default), messages above the inline
  /// threshold are DMA-read from the caller's buffer *after* write
  /// returns — the buffer must stay alive and unmodified until the WR
  /// completes (in practice: until the peer has consumed the message).
  /// Inline and pool-copy sends have no such requirement. This is the
  /// standard RDMA zero-copy contract; Reptor-style transports that
  /// cannot guarantee it disable zero_copy_send and pay the copy, which
  /// is exactly the trade-off measured in Fig. 4.
  ///
  /// rubinlint enforces this contract statically (coro-stack-wr,
  /// DESIGN.md §10): a buffer owned by the sending coroutine's frame is
  /// flagged — hoist it to the caller, or use the SharedBytes overload
  /// below, which pins the payload for the WR's lifetime.
  sim::Task<std::size_t> write(ByteView msg);

  /// Zero-copy variant: the refcounted handle rides the WR all the way to
  /// the peer, so neither the inline WQE copy, the pool-staging copy, nor
  /// the NIC DMA snapshot is physically performed — their virtual-time
  /// charges are unchanged. The buffer-lifetime caveat of zero_copy_send
  /// disappears: the handle pins the payload until the NIC is done.
  sim::Task<std::size_t> write(SharedBytes msg);

  /// Sends up to msgs.size() messages with a single doorbell (§IV batch
  /// posting); stops early when capacity runs out. Returns the number of
  /// messages accepted.
  sim::Task<std::size_t> write_batch(std::vector<ByteView> msgs);

  /// Zero-copy batch; see write(SharedBytes).
  sim::Task<std::size_t> write_batch(std::vector<SharedBytes> msgs);

  /// Scatter/gather send: a multi-slice frame is posted as one WR whose
  /// SGE list maps 1:1 onto the slices — the gather memcpy the flattening
  /// path performed (and charged) does not happen at all. Single-slice
  /// frames take exactly the write(SharedBytes) path. The peer receives
  /// one contiguous message either way.
  sim::Task<std::size_t> write(FrameVec msg);

  /// Scatter/gather batch; see write(FrameVec).
  sim::Task<std::size_t> write_batch(std::vector<FrameVec> msgs);

  /// Receives one message into `out`. Returns its size, or 0 when no
  /// message is pending. Throws std::invalid_argument if `out` is smaller
  /// than the pending message (message-oriented, no partial reads).
  sim::Task<std::size_t> read(MutByteView out);

  /// Receives one message as a refcounted handle (empty handle when no
  /// message is pending). Identical virtual-time cost to read() — the
  /// receive-side copy the paper measures is still *charged* under
  /// !zero_copy_receive — but the physical copy-out is elided.
  sim::Task<SharedBytes> read_shared();

  /// Messages currently buffered and readable without blocking.
  std::size_t readable_messages() noexcept;
  /// True when write() would accept a message right now.
  bool writable() noexcept;
  /// Free send-queue slots right now (0 while not established) — the
  /// queue-depth pressure input of the transport selector.
  std::uint32_t send_slots_free() noexcept;
  /// Side-effect-free variant of send_slots_free(): reports the slots as
  /// of the last pump, without processing completions. A selector reading
  /// this (e.g. per-frame picks inside a flush loop) perturbs nothing —
  /// pumping here would shift the selective-signaling cadence and break
  /// the fixed-policy bit-identity guarantee.
  std::uint32_t send_slots_hint() const noexcept;

  /// Standalone (selector-less) helper: waits until a message arrives or
  /// the channel dies, then reads it. Used by the Fig-3 micro-benchmark.
  sim::Task<std::size_t> read_await(MutByteView out);

  /// Closes the channel; the peer observes kOpReceive readiness with
  /// read() == 0 and state() == kClosed.
  void close();

  /// First non-success completion status observed on either CQ (kSuccess
  /// while the channel is healthy). A failed channel is closed — the error
  /// surfaces as selector readiness, never as a silent success.
  verbs::WcStatus last_error() const noexcept { return last_error_; }

  ~RdmaChannel();

 private:
  friend class RubinContext;
  friend class RdmaSelector;
  friend class RdmaServerChannel;

  RdmaChannel(RubinContext& ctx, std::uint64_t id, ChannelConfig cfg);

  /// Late initialization: QP + pools (needs shared_from_this for sinks).
  void init_qp();
  void on_cm_event(const verbs::CmEvent& e);
  /// Charges the app thread for completion events consumed since the last
  /// operation (fd read + ack).
  sim::Task<void> ack_events();
  /// Drains both CQs into channel state (filled receives, reclaimed send
  /// slots) and re-arms them.
  void pump();
  void notify();
  /// Error path shared by pump() and failed posts: records the first
  /// failure status, reclaims every in-flight WR (the hardware will never
  /// complete them on a dead QP), and closes — which is what makes the
  /// selector report the channel instead of the error vanishing.
  void fail(verbs::WcStatus status);
  /// Returns outstanding WRs' pool slots and settles the WR accounting.
  void flush_outstanding();

  struct OutstandingSend {
    std::int32_t pool_slot = -1;  // -1: inline or zero-copy (no pool slot)
    bool signaled = false;
  };
  struct FilledRecv {
    std::uint32_t slot = 0;
    std::uint32_t len = 0;
    /// Captured payload handle (channel receives always capture; the pool
    /// slot stays claimed until re-posted but its bytes are not written).
    SharedBytes payload;
  };

  /// Builds the WR for one message, charging the caller's CPU as needed.
  /// Returns false when capacity is exhausted (nothing charged). When
  /// `handle` is non-null and non-empty, the WR carries it as a zero-copy
  /// payload (same charges, no physical staging copies).
  sim::Task<bool> stage_message(ByteView msg, const SharedBytes* handle,
                                std::vector<verbs::SendWr>& out);
  /// Multi-slice sibling of stage_message: builds one WR whose SGE list
  /// covers the frame's slices (no gather copy, physical or charged).
  sim::Task<bool> stage_frame(const FrameVec& frame,
                              std::vector<verbs::SendWr>& out);
  /// Shared epilogue of the staging paths: selective signaling, the
  /// outstanding-WR accounting, and the batch hand-off.
  void enqueue_staged(verbs::SendWr&& wr, OutstandingSend rec,
                      std::vector<verbs::SendWr>& out);
  /// Shared epilogue of read()/read_shared(): charges the receive-side
  /// copy when configured and recycles the receive buffer.
  sim::Task<void> finish_read(const FilledRecv& msg);

  /// Single-message write body (the hot path of both write() overloads):
  /// identical charge sequence to write_batch with one message, minus
  /// the wrapper vector.
  sim::Task<std::size_t> write_one(ByteView msg, const SharedBytes* handle);

  /// Hands a write path the channel's reusable WR staging vector, or a
  /// throwaway local one when another write on this channel is already
  /// mid-flight (write calls suspend, so overlap is possible in
  /// principle even though every current caller serializes). The member
  /// vector keeps its capacity across calls, so the steady-state write
  /// path stages WRs with no per-call vector allocation.
  struct StagingLease {
    explicit StagingLease(RdmaChannel& ch)
        : ch_(ch), owned_(!ch.staging_busy_) {
      if (owned_) {
        ch.staging_busy_ = true;
        ch.staging_.clear();
      }
    }
    ~StagingLease() {
      if (owned_) ch_.staging_busy_ = false;
    }
    StagingLease(const StagingLease&) = delete;
    StagingLease& operator=(const StagingLease&) = delete;
    std::vector<verbs::SendWr>& wrs() noexcept {
      return owned_ ? ch_.staging_ : local_;
    }

   private:
    RdmaChannel& ch_;
    bool owned_;
    std::vector<verbs::SendWr> local_;
  };

  RubinContext* ctx_;
  std::uint64_t id_;
  ChannelConfig cfg_;
  State state_ = State::kConnecting;
  verbs::WcStatus last_error_ = verbs::WcStatus::kSuccess;

  verbs::CompletionChannel* comp_channel_ = nullptr;
  verbs::CompletionQueue* send_cq_ = nullptr;
  verbs::CompletionQueue* recv_cq_ = nullptr;
  std::shared_ptr<verbs::QueuePair> qp_;
  std::unique_ptr<BufferPool> send_pool_;
  std::unique_ptr<BufferPool> recv_pool_;

  GrowingRing<OutstandingSend> outstanding_;
  /// Audit: work-request accounting. Every accepted send increments
  /// posted_wrs_; every reclaimed OutstandingSend increments
  /// reclaimed_wrs_. Invariant: outstanding_.size() == posted - reclaimed
  /// and never exceeds the QP's send queue depth.
  std::uint64_t posted_wrs_ = 0;
  std::uint64_t reclaimed_wrs_ = 0;
  /// Completion events delivered but not yet acknowledged by the
  /// application thread; the next channel operation pays event_ack_cpu
  /// for each (selective signaling keeps this small).
  std::uint32_t unacked_events_ = 0;
  GrowingRing<FilledRecv> filled_;
  std::uint32_t sends_since_signal_ = 0;
  std::uint64_t conn_id_ = 0;  // CM connection, 0 until known

  /// Cached MRs for zero-copy sends. Handle-backed sends key by
  /// {SharedBytes::buffer_id(), byte offset}: allocation ids are never
  /// reused, so the hit pattern is a pure function of the logical
  /// message sequence — a heap address would alias recycled buffers and
  /// make the registration *charge* depend on malloc history (a real
  /// run-to-run nondeterminism the FaultLab explorer caught).
  /// Raw ByteView sends (no handle) keep the classic address key
  /// {0, address}: that models DiSNI's cache for app-owned long-lived
  /// buffers, which are address-stable for the channel's lifetime.
  using MrKey = std::pair<std::uint64_t, std::uint64_t>;
  std::map<MrKey, verbs::MemoryRegion*> send_mr_cache_;

  /// Reusable WR staging for the write paths (see StagingLease).
  std::vector<verbs::SendWr> staging_;
  bool staging_busy_ = false;

  /// Selector hookup (null when unregistered).
  std::function<void()> selector_notify_;
  /// Standalone wakeup for read_await().
  sim::Event activity_;

  ChannelStats stats_;
};

/// Listening channel. kOpConnect readiness = pending connection requests;
/// kOpAccept readiness = accepted connections that finished establishing.
class RdmaServerChannel
    : public std::enable_shared_from_this<RdmaServerChannel> {
 public:
  std::uint64_t id() const noexcept { return id_; }
  std::uint16_t port() const noexcept { return port_; }

  std::size_t pending_requests() const noexcept { return pending_.size(); }

  /// Accepts the oldest pending request: allocates the server-side channel
  /// (QP + pools, receives pre-posted) and completes the CM handshake.
  /// The channel surfaces on next_established() once the handshake ends.
  /// Returns nullptr when nothing is pending.
  std::shared_ptr<RdmaChannel> accept();

  /// Connections whose establishment finished but has not been consumed.
  std::size_t established_count() const noexcept { return established_.size(); }
  std::shared_ptr<RdmaChannel> next_established();

  void close();

 private:
  friend class RubinContext;
  friend class RdmaSelector;

  RdmaServerChannel(RubinContext& ctx, std::uint64_t id, std::uint16_t port,
                    ChannelConfig cfg);
  void on_cm_event(const verbs::CmEvent& e);
  /// Charges the app thread for completion events consumed since the last
  /// operation (fd read + ack).
  sim::Task<void> ack_events();
  void notify();

  RubinContext* ctx_;
  std::uint64_t id_;
  std::uint16_t port_;
  ChannelConfig cfg_;
  std::shared_ptr<verbs::CmListener> listener_;
  GrowingRing<verbs::CmEvent> pending_;  // unaccepted kConnectRequest events
  std::map<std::uint64_t, std::shared_ptr<RdmaChannel>> accepting_;
  GrowingRing<std::shared_ptr<RdmaChannel>> established_;
  std::function<void()> selector_notify_;
  bool closed_ = false;
};

}  // namespace rubin::nio
