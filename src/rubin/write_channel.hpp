// OneSidedChannel — the design RUBIN rejected (paper §III-A), implemented
// so the trade-off is measurable instead of rhetorical.
//
// Messages travel as RDMA WRITEs into a ring of fixed slots in the
// *receiver's* memory (the DARE/FaRM mailbox pattern); the receiver
// polls, and returns credits by RDMA-writing its consumed counter into
// the sender's memory. No completion events, no receive WRs — which is
// precisely why it cannot sit behind the event-driven RdmaSelector, and
// why the receiver must expose remotely writable memory:
//
//   * lowest latency of all modes (matches the paper's Fig. 3 R/W line);
//   * "an application [must] expose its buffers to the connected remote
//     nodes" — anyone holding the rkey can corrupt the ring (§III-C);
//     tests demonstrate both the corruption and that Reptor's HMACs
//     detect it;
//   * per-peer pinned rings: memory and coordination grow with the group,
//     the paper's scalability objection.
//
// Bootstrap: ring addresses/rkeys are exchanged over one two-sided
// send/receive round on the same QP.
#pragma once

#include <cstdint>
#include <memory>

#include "common/bytes.hpp"
#include "rubin/context.hpp"
#include "sim/task.hpp"
#include "verbs/device.hpp"

namespace rubin::nio {

struct OneSidedConfig {
  std::uint32_t slot_count = 32;
  std::size_t slot_payload = 128 * 1024;
  /// Receiver returns credits after consuming this many slots.
  std::uint32_t credit_interval = 8;
  /// Poll loop granularity for read_await.
  sim::Time poll_interval = sim::microseconds(1.0);
};

struct OneSidedStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  std::uint64_t credit_writes = 0;
  std::uint64_t no_credit_stalls = 0;
};

class OneSidedChannel {
 public:
  /// Builds a connected pair over two contexts (tests/benches wire QPs
  /// directly; production would run the same exchange through the CM).
  /// The returned channels are ready for write()/read() once the
  /// bootstrap handshake completes — await `ready()`.
  static std::pair<std::unique_ptr<OneSidedChannel>,
                   std::unique_ptr<OneSidedChannel>>
  create_pair(RubinContext& a, RubinContext& b, OneSidedConfig cfg = {});

  /// One-sided send: RDMA-writes the message into the peer's ring.
  /// Returns msg.size(), or 0 when out of credits (peer not consuming).
  sim::Task<std::size_t> write(ByteView msg);

  /// Scatter/gather one-sided send: the 16-byte slot header and the
  /// frame's slices travel as one RDMA WRITE with a multi-element SGE
  /// list — the staging memcpy of the flat path (its copy_time charge and
  /// the physical copy) is gone. Slice budget: header + slices must fit
  /// verbs::SgeList::kMaxSges.
  sim::Task<std::size_t> write(FrameVec msg);

  /// Polls the local ring; returns the next message or 0 if none.
  sim::Task<std::size_t> read(MutByteView out);

  /// Polling receive (there are *no* events to wait on — the defining
  /// limitation of this design).
  sim::Task<std::size_t> read_await(MutByteView out);

  const OneSidedStats& stats() const noexcept { return stats_; }
  const OneSidedConfig& config() const noexcept { return cfg_; }
  /// Ring slots a write() could claim right now, by the sender's own
  /// (conservative, forgery-filtered) view of the peer's credit cell —
  /// the ring-credit input of the transport selector.
  std::uint64_t credits_available() const noexcept;
  /// Remotely writable bytes this endpoint must expose (the §III-C
  /// attack surface; grows linearly with the number of peers).
  std::size_t exposed_bytes() const noexcept { return ring_.size() + 16; }
  /// The ring's rkey — what an attacker needs to corrupt this channel
  /// (exposed for the security-demonstration tests).
  std::uint32_t ring_rkey() const noexcept { return ring_mr_->rkey(); }
  std::uint64_t ring_addr() const noexcept { return ring_mr_->addr(); }
  /// The credit cell — the *other* remotely writable word on this
  /// endpoint; forging it attacks flow control rather than payloads
  /// (exposed for the forged-credit security test).
  std::uint32_t credit_rkey() const noexcept { return credit_mr_->rkey(); }
  std::uint64_t credit_addr() const noexcept { return credit_mr_->addr(); }
  verbs::QueuePair& qp() noexcept { return *qp_; }

 private:
  OneSidedChannel(RubinContext& ctx, OneSidedConfig cfg);

  std::size_t slot_stride() const noexcept {
    return 16 + cfg_.slot_payload;  // u32 len | u32 pad | u64 seq | payload
  }
  sim::Task<void> return_credits();
  /// Shared flow-control preamble of the write paths: polls completions,
  /// reads the (remotely writable) credit cell, and reports whether a
  /// ring slot is available. Sleeps post_call_cpu when stalled.
  sim::Task<bool> acquire_credit();

  RubinContext* ctx_;
  OneSidedConfig cfg_;
  std::shared_ptr<verbs::QueuePair> qp_;
  verbs::CompletionQueue* scq_ = nullptr;
  verbs::CompletionQueue* rcq_ = nullptr;

  // Local (exposed) resources.
  Bytes ring_;                 // inbound slots, remotely written
  Bytes credit_cell_;          // sender-side: peer writes consumed count
  verbs::MemoryRegion* ring_mr_ = nullptr;
  verbs::MemoryRegion* credit_mr_ = nullptr;
  Bytes bootstrap_buf_;        // two-sided handshake scratch
  verbs::MemoryRegion* bootstrap_mr_ = nullptr;

  // Remote targets (learned in the bootstrap).
  std::uint64_t remote_ring_addr_ = 0;
  std::uint32_t remote_ring_rkey_ = 0;
  std::uint64_t remote_credit_addr_ = 0;
  std::uint32_t remote_credit_rkey_ = 0;

  std::uint64_t sent_seq_ = 0;      // messages written to the peer
  std::uint64_t recv_seq_ = 0;      // messages consumed locally
  std::uint64_t credited_seq_ = 0;  // last consumed count sent to the peer
  std::uint64_t wr_seq_ = 0;        // selective-signaling counter
  /// Audit: highest plausible credit value observed. The credit cell is
  /// remotely writable (§III-C), so implausible values are *counted*, not
  /// asserted — a Byzantine peer may forge them.
  std::uint64_t last_credit_ = 0;

  OneSidedStats stats_;
};

}  // namespace rubin::nio
