#include "rubin/decision_log.hpp"

#include <cstring>
#include <stdexcept>

#include "common/audit.hpp"

namespace rubin::nio {

namespace {

std::uint64_t read_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, 8);
  return v;
}

std::uint32_t read_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, 4);
  return v;
}

void write_u64(std::uint8_t* p, std::uint64_t v) { std::memcpy(p, &v, 8); }
void write_u32(std::uint8_t* p, std::uint32_t v) { std::memcpy(p, &v, 4); }

/// granted_view_ while a flip is in flight: no view matches, so grant_for
/// fails and publishers bypass — "revoke before grant" as observable state.
constexpr std::uint64_t kNoGrant = ~0ULL;

}  // namespace

DecisionLog::DecisionLog(RubinContext& ctx, std::uint32_t self,
                         std::uint32_t n, DecisionLogConfig cfg)
    : ctx_(&ctx),
      cfg_(cfg),
      self_(self),
      selector_(ctx.cost(), cfg.policy) {
  auto& dev = ctx.device();
  scq_ = dev.create_cq(4 * cfg_.slot_count + 4 * n);
  rcq_ = dev.create_cq(16);

  ring_.resize(static_cast<std::size_t>(cfg_.slot_count) * slot_stride());
  ring_mr_ = ctx.pd().register_memory(
      ring_, verbs::kAccessLocalWrite | verbs::kAccessRemoteWrite);

  ack_buf_.resize(n);
  ack_mr_.resize(n, nullptr);
  for (std::uint32_t p = 0; p < n; ++p) {
    if (p == self_) continue;
    ack_buf_[p].resize(static_cast<std::size_t>(cfg_.slot_count) *
                       kAckCellBytes);
    // Separate MR per peer: the rkey handed to p maps only p's region, so
    // a cell in region p *proves* p wrote it (placement authentication).
    ack_mr_[p] = ctx.pd().register_memory(
        ack_buf_[p], verbs::kAccessLocalWrite | verbs::kAccessRemoteWrite);
  }

  staging_.resize(slot_stride());
  staging_mr_ = ctx.pd().register_memory(staging_, 0);

  qp_.resize(n);
  peer_.resize(n);
  cached_rkey_.resize(n, 0);
  verbs::QpConfig qc;
  qc.max_send_wr = 2 * cfg_.slot_count + 32;  // records + ack writes
  for (std::uint32_t p = 0; p < n; ++p) {
    if (p == self_) continue;
    qp_[p] = dev.create_qp(ctx.pd(), *scq_, *rcq_, qc);
  }
}

std::vector<std::unique_ptr<DecisionLog>> DecisionLog::create_group(
    const std::vector<RubinContext*>& ctxs, DecisionLogConfig cfg) {
  const auto n = static_cast<std::uint32_t>(ctxs.size());
  std::vector<std::unique_ptr<DecisionLog>> logs;
  logs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    logs.emplace_back(
        std::unique_ptr<DecisionLog>(new DecisionLog(*ctxs[i], i, n, cfg)));
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    logs[i]->group_.resize(n);
    for (std::uint32_t j = 0; j < n; ++j) logs[i]->group_[j] = logs[j].get();
  }
  // QP mesh + address exchange (production would run this bootstrap
  // through the CM; the helper wires it directly, like create_pair).
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = i + 1; j < n; ++j) {
      logs[i]->qp_[j]->connect(ctxs[j]->device(), logs[j]->qp_[i]->qp_num());
      logs[j]->qp_[i]->connect(ctxs[i]->device(), logs[i]->qp_[j]->qp_num());
    }
    for (std::uint32_t j = 0; j < n; ++j) {
      if (j == i) continue;
      logs[i]->peer_[j].ring_addr = logs[j]->ring_mr_->addr();
      logs[i]->peer_[j].ack_addr = logs[j]->ack_mr_[i]->addr();
      logs[i]->peer_[j].ack_rkey = logs[j]->ack_mr_[i]->rkey();
    }
    logs[i]->grant_initial();
  }
  return logs;
}

void DecisionLog::grant_initial() { granted_view_ = 0; }

std::size_t DecisionLog::exposed_bytes() const noexcept {
  std::size_t total = ring_.size();
  for (const Bytes& b : ack_buf_) total += b.size();
  return total;
}

sim::Task<void> DecisionLog::enter_view(std::uint64_t view) {
  // Revoke first: grant_for fails for every view from this line until the
  // flip's NIC charge has elapsed, and the *old* rkey is erased before the
  // first suspension below — a deposed primary's next write NAKs even if
  // it lands mid-flip.
  granted_view_ = kNoGrant;
  ++stats_.permission_flips;
  RUBIN_AUDIT_COUNT("decision_log.permission_flip", 1);
  (void)co_await ctx_->device().flip_write_permission(ctx_->pd(), ring_mr_,
                                                      true);
  granted_view_ = view;
}

bool DecisionLog::has_credit(std::uint32_t peer, std::uint64_t seq) const {
  if (seq <= cfg_.slot_count) return true;
  // The slot's previous occupant was seq - slot_count; its ack landed in
  // the *same* cell index of the peer's region. Any acked seq at or past
  // it proves consumption (acks are monotone per honest peer; a peer
  // lying here only risks its own ring).
  const std::uint8_t* cell =
      ack_buf_[peer].data() + (seq % cfg_.slot_count) * kAckCellBytes;
  return read_u64(cell) >= seq - cfg_.slot_count;
}

sim::Task<verbs::PostResult> DecisionLog::post_ring_write(
    std::uint32_t peer, std::uint64_t remote_off, FrameVec wire,
    std::uint32_t rkey) {
  verbs::SendWr wr;
  wr.opcode = verbs::Opcode::kRdmaWrite;
  wr.wr_id = wr_seq_;
  // SGEs anchor the protection checks in the staging span; the bytes ride
  // zero-copy as the refcounted wire slices (the FrameVec write path).
  std::uint64_t addr = staging_mr_->addr();
  for (const SharedBytes& s : wire) {
    wr.sg_list.push_back(verbs::Sge{
        addr, static_cast<std::uint32_t>(s.size()), staging_mr_->lkey()});
    addr += s.size();
  }
  wr.shared_payload = std::move(wire);
  wr.remote_addr = peer_[peer].ring_addr + remote_off;
  wr.rkey = rkey;
  wr.signaled = (++wr_seq_ % 8) == 0;
  co_return co_await qp_[peer]->post_send_one(std::move(wr));
}

sim::Task<std::uint32_t> DecisionLog::publish(std::uint64_t seq,
                                              std::uint64_t view,
                                              sim::Time proposed_at,
                                              SharedBytes record) {
  if (record.size() > cfg_.slot_payload) {
    throw std::invalid_argument("DecisionLog::publish: record too large");
  }
  (void)drain_completions();

  SharedBytes header = SharedBytes::allocate(kHeaderBytes);
  std::uint8_t* h = header.mutable_data();
  write_u64(h, seq);
  write_u64(h + 8, view);
  write_u64(h + 16, static_cast<std::uint64_t>(proposed_at));
  write_u32(h + 24, static_cast<std::uint32_t>(record.size()));
  write_u32(h + 28, 0);
  SharedBytes canary = SharedBytes::allocate(kCanaryBytes);
  write_u64(canary.mutable_data(), canary_of(seq, view));

  std::uint32_t written = 0;
  const auto n = static_cast<std::uint32_t>(group_.size());
  for (std::uint32_t p = 0; p < n; ++p) {
    if (p == self_) continue;
    const auto grant = group_[p]->grant_for(view);
    if (!grant.has_value() || !has_credit(p, seq)) {
      ++stats_.bypasses;
      RUBIN_AUDIT_COUNT("transport.onesided.bypass", 1);
      continue;
    }
    SelectorInputs in;
    in.payload = kHeaderBytes + record.size() + kCanaryBytes;
    in.send_slots_free = qp_[p]->send_slots_free();
    in.ring_credits = 1;
    in.recv_poll_interval = cfg_.poll_interval;
    if (selector_.pick(in) != TransportKind::kWrite) {
      ++stats_.bypasses;
      RUBIN_AUDIT_COUNT("transport.onesided.bypass", 1);
      continue;
    }
    cached_rkey_[p] = *grant;
    FrameVec wire(header);
    wire.append(record);
    wire.append(canary);
    const auto r = co_await post_ring_write(p, slot_offset(seq),
                                            std::move(wire), *grant);
    if (r != verbs::PostResult::kOk) {
      ++stats_.bypasses;
      RUBIN_AUDIT_COUNT("transport.onesided.bypass", 1);
      continue;
    }
    ++written;
    ++stats_.records_published;
    RUBIN_AUDIT_COUNT("transport.onesided.write", 1);
  }
  co_return written;
}

sim::Task<SlotStatus> DecisionLog::poll_slot(std::uint64_t seq,
                                             std::uint64_t view,
                                             DecisionRecord& out) {
  // A probe costs one cache-line read's worth of CPU, like the mailbox
  // poll of OneSidedChannel::read.
  co_await ctx_->simulator().sleep(ctx_->cost().post_call_cpu);

  const std::uint8_t* slot = ring_.data() + slot_offset(seq);
  const std::uint64_t h_seq = read_u64(slot);
  const std::uint64_t h_view = read_u64(slot + 8);

  if (h_seq != seq) {
    // An empty cell, or the wrapped leftover of an earlier lap of the
    // ring (seq - k * slot_count) — both benign. Anything else was never
    // written by an honest primary for this slot: suspend-worthy.
    const bool leftover = h_seq < seq && (seq - h_seq) % cfg_.slot_count == 0;
    if (h_seq == 0 || leftover) co_return SlotStatus::kEmpty;
    RUBIN_AUDIT_COUNT("decision_log.stale", 1);
    ++stats_.stale_slots;
    co_return SlotStatus::kBadFrame;
  }
  if (h_view != view) {
    // Right sequence, wrong view: a replayed record from before the view
    // change (or one that raced it). The new primary's write will
    // overwrite the slot; until then the message path carries the seq.
    RUBIN_AUDIT_COUNT("decision_log.stale", 1);
    ++stats_.stale_slots;
    co_return SlotStatus::kStale;
  }
  const std::uint32_t len = read_u32(slot + 24);
  if (len > cfg_.slot_payload) co_return SlotStatus::kBadFrame;
  if (read_u64(slot + kHeaderBytes + len) != canary_of(seq, view)) {
    // Header present, canary missing: the write has not fully landed (or
    // was deliberately torn). Not consumed, not fatal — a persistent torn
    // slot simply stalls the fast path until the watchdog falls back.
    RUBIN_AUDIT_COUNT("decision_log.torn", 1);
    ++stats_.torn_slots;
    co_return SlotStatus::kTorn;
  }

  co_await ctx_->simulator().sleep(ctx_->cost().copy_time(len));
  SharedBytes rec = SharedBytes::allocate(len);
  std::memcpy(rec.mutable_data(), slot + kHeaderBytes, len);
  out.seq = seq;
  out.view = h_view;
  out.proposed_at = static_cast<sim::Time>(read_u64(slot + 16));
  out.record = std::move(rec);
  co_return SlotStatus::kReady;
}

sim::Task<void> DecisionLog::ack(std::uint64_t seq, std::uint64_t tag) {
  std::uint8_t cell[kAckCellBytes];
  write_u64(cell, seq);
  write_u64(cell + 8, tag);
  const std::uint64_t cell_off = (seq % cfg_.slot_count) * kAckCellBytes;
  const auto n = static_cast<std::uint32_t>(group_.size());
  for (std::uint32_t p = 0; p < n; ++p) {
    if (p == self_) continue;
    // 16 bytes ride inline in the WQE: no staging, no payload DMA read,
    // no completion — the cheapest write the device offers.
    verbs::SendWr wr;
    wr.opcode = verbs::Opcode::kRdmaWrite;
    wr.wr_id = 0xACC'0000 + seq;
    wr.inline_data = true;
    wr.sg_list = verbs::Sge{reinterpret_cast<std::uint64_t>(cell),
                            kAckCellBytes, 0};
    wr.remote_addr = peer_[p].ack_addr + cell_off;
    wr.rkey = peer_[p].ack_rkey;
    wr.signaled = false;
    (void)co_await qp_[p]->post_send_one(wr);
    ++stats_.acks_sent;
  }
}

std::uint32_t DecisionLog::acks_for(std::uint64_t seq,
                                    std::uint64_t tag) const {
  std::uint32_t count = 0;
  const std::uint64_t cell_off = (seq % cfg_.slot_count) * kAckCellBytes;
  for (std::uint32_t p = 0; p < group_.size(); ++p) {
    if (p == self_) continue;
    const std::uint8_t* cell = ack_buf_[p].data() + cell_off;
    if (read_u64(cell) == seq && read_u64(cell + 8) == tag) ++count;
  }
  return count;
}

std::size_t DecisionLog::drain_completions() {
  std::size_t naks = 0;
  for (;;) {
    const auto batch = scq_->poll(16);
    for (const verbs::Completion& c : batch) {
      if (c.status == verbs::WcStatus::kRemoteAccessError) {
        ++naks;
        ++stats_.write_naks;
        RUBIN_AUDIT_COUNT("decision_log.write_nak", 1);
      }
    }
    if (batch.empty()) break;
  }
  return naks;
}

sim::Task<verbs::PostResult> DecisionLog::raw_write(
    std::uint32_t peer, std::uint64_t offset, SharedBytes bytes,
    std::optional<std::uint32_t> rkey) {
  if (bytes.size() > staging_.size()) {
    throw std::invalid_argument("DecisionLog::raw_write: too large");
  }
  FrameVec wire{bytes};
  co_return co_await post_ring_write(peer, offset, std::move(wire),
                                     rkey.value_or(cached_rkey_[peer]));
}

SharedBytes DecisionLog::make_slot(std::uint64_t seq, std::uint64_t view,
                                   sim::Time proposed_at, ByteView payload,
                                   bool valid_canary) {
  SharedBytes slot = SharedBytes::allocate(kHeaderBytes + payload.size() +
                                           kCanaryBytes);
  std::uint8_t* p = slot.mutable_data();
  write_u64(p, seq);
  write_u64(p + 8, view);
  write_u64(p + 16, static_cast<std::uint64_t>(proposed_at));
  write_u32(p + 24, static_cast<std::uint32_t>(payload.size()));
  write_u32(p + 28, 0);
  std::memcpy(p + kHeaderBytes, payload.data(), payload.size());
  const std::uint64_t canary = canary_of(seq, view);
  write_u64(p + kHeaderBytes + payload.size(),
            valid_canary ? canary : ~canary);
  return slot;
}

}  // namespace rubin::nio
