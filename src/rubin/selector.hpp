// RdmaSelector — the key component of RUBIN (paper §III-B, Fig. 2).
//
// Recreates java.nio.channels.Selector semantics over RDMA:
//  * channels register with an interest set (OP_CONNECT / OP_ACCEPT /
//    OP_RECEIVE / OP_SEND) and get an RdmaSelectionKey back;
//  * a single thread multiplexes any number of channels through select();
//  * instead of epoll, an EventManager feeds a *hybrid event queue* that
//    merges connection-manager events and completion-queue events; every
//    queued event costs a dispatch step (ID comparison + ready-set
//    update) inside select() — the reason RUBIN's select() is slightly
//    more expensive per event than the kernel-optimized Java NIO selector
//    (paper §IV), while each TCP selector *wakeup* costs a full syscall.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/audit.hpp"
#include "common/ring_buffer.hpp"
#include "rubin/channel.hpp"
#include "rubin/context.hpp"
#include "sim/event.hpp"
#include "sim/task.hpp"

namespace rubin::nio {

/// Interest / readiness bits (paper §III-B).
enum Ops : std::uint32_t {
  kOpConnect = 1u << 0,  // incoming connection request (server channels)
  kOpAccept = 1u << 1,   // connection establishment finished
  kOpReceive = 1u << 2,  // a received message is available
  kOpSend = 1u << 3,     // the channel can accept another message
};

class RdmaSelectionKey {
 public:
  std::uint32_t interest_ops() const noexcept { return interest_; }
  void set_interest_ops(std::uint32_t ops) noexcept {
    RUBIN_AUDIT_ASSERT("selector", !cancelled_,
                       "set_interest_ops on a cancelled key");
    interest_ = ops;
  }
  std::uint32_t ready_ops() const noexcept { return ready_; }

  bool is_connectable() const noexcept { return ready_ & kOpConnect; }
  bool is_acceptable() const noexcept { return ready_ & kOpAccept; }
  bool is_receivable() const noexcept { return ready_ & kOpReceive; }
  bool is_sendable() const noexcept { return ready_ & kOpSend; }

  std::uint64_t attachment() const noexcept { return attachment_; }
  void attach(std::uint64_t v) noexcept {
    RUBIN_AUDIT_ASSERT("selector", !cancelled_, "attach on a cancelled key");
    attachment_ = v;
  }

  /// The registered channel's unique connection identifier.
  std::uint64_t channel_id() const noexcept { return channel_id_; }
  const std::shared_ptr<RdmaChannel>& channel() const noexcept { return channel_; }
  const std::shared_ptr<RdmaServerChannel>& server_channel() const noexcept {
    return server_;
  }

  void cancel() noexcept { cancelled_ = true; }
  bool cancelled() const noexcept { return cancelled_; }

 private:
  friend class RdmaSelector;
  std::shared_ptr<RdmaChannel> channel_;
  std::shared_ptr<RdmaServerChannel> server_;
  std::uint64_t channel_id_ = 0;
  std::uint32_t interest_ = 0;
  std::uint32_t ready_ = 0;
  std::uint64_t attachment_ = 0;
  bool cancelled_ = false;
  bool accept_fired_ = false;  // client-side kOpAccept reported once
};

/// The hybrid event queue + notification half of the selector (paper:
/// "an event manager is associated with the selector to keep track of the
/// events added to the queue and to notify the selector").
class EventManager {
 public:
  struct HybridEvent {
    enum class Source : std::uint8_t { kConnection, kCompletion };
    Source source = Source::kCompletion;
    std::uint64_t channel_id = 0;
  };

  explicit EventManager(sim::Simulator& sim) : wake_(sim) {}

  void push(HybridEvent e) {
    queue_.push(e);
    wake_.set();
  }
  std::size_t pending() const noexcept { return queue_.size(); }

 private:
  friend class RdmaSelector;
  GrowingRing<HybridEvent> queue_;
  sim::Event wake_;
};

class RdmaSelector {
 public:
  explicit RdmaSelector(RubinContext& ctx);
  ~RdmaSelector();
  RdmaSelector(const RdmaSelector&) = delete;
  RdmaSelector& operator=(const RdmaSelector&) = delete;

  /// Registers a channel (paper Fig. 2, step 1). The returned key holds
  /// the interest set and is updated by select().
  RdmaSelectionKey* register_channel(std::shared_ptr<RdmaChannel> channel,
                                     std::uint32_t interest,
                                     std::uint64_t attachment = 0);
  RdmaSelectionKey* register_server(std::shared_ptr<RdmaServerChannel> server,
                                    std::uint32_t interest,
                                    std::uint64_t attachment = 0);

  /// Blocks (in virtual time) until at least one registered channel is
  /// ready for an operation in its interest set, the timeout expires
  /// (timeout >= 0), or wakeup() is called. Returns the number of ready
  /// keys (paper Fig. 2, steps 3-5).
  sim::Task<std::size_t> select(sim::Time timeout = -1);

  const std::vector<RdmaSelectionKey*>& selected() const noexcept {
    return selected_;
  }

  void wakeup() {
    wakeup_pending_ = true;
    em_.wake_.set();
  }

  std::size_t key_count() const noexcept { return keys_.size(); }

  /// Key registered for the channel with this connection identifier;
  /// nullptr if none.
  RdmaSelectionKey* find_key(std::uint64_t channel_id) noexcept {
    for (auto& key : keys_) {
      if (key->channel_id_ == channel_id && !key->cancelled_) return key.get();
    }
    return nullptr;
  }
  std::uint64_t events_dispatched() const noexcept { return events_dispatched_; }

 private:
  std::uint32_t current_ready(RdmaSelectionKey& key) const;
  void sweep_cancelled();

  RubinContext* ctx_;
  EventManager em_;
  std::vector<std::unique_ptr<RdmaSelectionKey>> keys_;
  std::vector<RdmaSelectionKey*> selected_;
  bool wakeup_pending_ = false;
  std::uint64_t events_dispatched_ = 0;
};

}  // namespace rubin::nio
