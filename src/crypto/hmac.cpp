#include "crypto/hmac.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "common/codec.hpp"

namespace rubin {

HmacKey::HmacKey(ByteView key) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > block.size()) {
    const Digest kd = Sha256::hash(key);
    std::memcpy(block.data(), kd.data(), kd.size());
  } else {
    std::memcpy(block.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, 64> ipad;
  std::array<std::uint8_t, 64> opad;
  for (std::size_t i = 0; i < 64; ++i) {
    ipad[i] = block[i] ^ 0x36;
    opad[i] = block[i] ^ 0x5c;
  }
  inner_.update(ipad);
  outer_.update(opad);
}

Digest HmacKey::finish_outer(Sha256 inner) const {
  const Digest inner_digest = inner.finish();
  Sha256 outer = outer_;  // resume the cached opad midstate
  outer.update(inner_digest);
  return outer.finish();
}

Digest HmacKey::mac(ByteView message) const {
  Sha256 inner = inner_;  // resume the cached ipad midstate
  inner.update(message);
  return finish_outer(inner);
}

Digest HmacKey::mac(const FrameVec& frame) const {
  Sha256 inner = inner_;
  for (const SharedBytes& s : frame) inner.update(s.view());
  return finish_outer(inner);
}

Mac HmacKey::truncated(ByteView message) const {
  const Digest full = mac(message);
  Mac m;
  std::copy_n(full.begin(), m.size(), m.begin());
  return m;
}

Mac HmacKey::truncated(const FrameVec& frame) const {
  const Digest full = mac(frame);
  Mac m;
  std::copy_n(full.begin(), m.size(), m.begin());
  return m;
}

Digest hmac_sha256(ByteView key, ByteView message) {
  return HmacKey(key).mac(message);
}

Mac truncated_mac(ByteView key, ByteView message) {
  return HmacKey(key).truncated(message);
}

KeyTable::KeyTable(std::uint32_t self, std::uint32_t group_size,
                   ByteView group_secret)
    : self_(self) {
  if (self >= group_size) {
    throw std::invalid_argument("KeyTable: self index out of range");
  }
  keys_.reserve(group_size);
  cached_.reserve(group_size);
  for (std::uint32_t peer = 0; peer < group_size; ++peer) {
    // Symmetric derivation: the pair is ordered (min, max) so both sides
    // compute the same key.
    Encoder enc;
    enc.put_u32(std::min(self, peer));
    enc.put_u32(std::max(self, peer));
    enc.put_raw(group_secret);
    const Digest d = Sha256::hash(enc.view());
    keys_.emplace_back(d.begin(), d.end());
    cached_.emplace_back(keys_.back());
  }
}

ByteView KeyTable::key_for(std::uint32_t peer) const {
  if (peer >= keys_.size()) {
    throw std::out_of_range("KeyTable: peer index out of range");
  }
  return keys_[peer];
}

Mac KeyTable::mac_for(std::uint32_t peer, ByteView message) const {
  if (peer >= cached_.size()) {
    throw std::out_of_range("KeyTable: peer index out of range");
  }
  return cached_[peer].truncated(message);
}

Mac KeyTable::mac_for(std::uint32_t peer, const FrameVec& message) const {
  if (peer >= cached_.size()) {
    throw std::out_of_range("KeyTable: peer index out of range");
  }
  return cached_[peer].truncated(message);
}

bool KeyTable::verify_from(std::uint32_t peer, ByteView message,
                           const Mac& mac) const {
  const Mac expect = mac_for(peer, message);
  return constant_time_equal(expect, mac);
}

std::vector<Mac> KeyTable::authenticator(ByteView message) const {
  std::vector<Mac> out;
  out.reserve(keys_.size());
  for (std::uint32_t peer = 0; peer < keys_.size(); ++peer) {
    out.push_back(mac_for(peer, message));
  }
  return out;
}

}  // namespace rubin
