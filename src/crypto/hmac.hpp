// HMAC-SHA-256 (RFC 2104) and the MAC-vector "authenticators" PBFT uses.
//
// Reptor authenticates replica messages with per-pair symmetric keys: a
// message carries one MAC per receiver (an *authenticator vector*). A
// Byzantine sender can put a valid MAC for one receiver and garbage for
// another, which is exactly the behaviour the PBFT view-change machinery
// must tolerate — so the authenticator is modeled faithfully here rather
// than as a single shared MAC.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/shared_bytes.hpp"
#include "crypto/sha256.hpp"

namespace rubin {

/// One-shot HMAC-SHA-256. Keys of any length (hashed down if > 64 bytes).
Digest hmac_sha256(ByteView key, ByteView message);

/// Truncated 8-byte MAC as used in PBFT authenticators (Castro & Liskov use
/// 10-byte UMACs; we truncate HMAC-SHA-256 — same trust model, cheaper wire
/// format than full digests).
using Mac = std::array<std::uint8_t, 8>;

Mac truncated_mac(ByteView key, ByteView message);

/// HMAC key with its SHA-256 midstates precomputed: the ipad and opad
/// blocks are absorbed once at construction, so each MAC costs two fewer
/// compressions than a from-scratch keyed hash — the paper's session keys
/// are long-lived while authenticators are per-message, so this is the
/// right trade. Results are bit-identical to hmac_sha256().
///
/// Thread sharing (the COP worker pool, DESIGN.md §9): after
/// construction an HmacKey is deep-immutable — every mac()/truncated()
/// overload copies the cached `inner_`/`outer_` midstates by value and
/// hashes in the copy, so any number of threads may MAC through the same
/// key concurrently with no synchronization. Do not add a mutating cache
/// to these const paths without revisiting that contract.
class HmacKey {
 public:
  explicit HmacKey(ByteView key);

  Digest mac(ByteView message) const;
  /// Incremental MAC over a scatter-gather frame: the slices are absorbed
  /// in order without flattening.
  Digest mac(const FrameVec& frame) const;

  Mac truncated(ByteView message) const;
  Mac truncated(const FrameVec& frame) const;

 private:
  Digest finish_outer(Sha256 inner) const;

  Sha256 inner_;  // state after absorbing key ^ ipad
  Sha256 outer_;  // state after absorbing key ^ opad
};

/// Symmetric pairwise session keys for a group of n nodes. Node i and node
/// j share key derive(i, j) == derive(j, i). Derivation is from a group
/// secret — stand-in for the key exchange a deployment would run.
///
/// Thread sharing: a KeyTable is immutable after its constructor returns
/// (keys_ and the cached_ midstates are filled once and only read by the
/// const members), so worker-pool decode jobs verify/mac against the
/// replica's table concurrently without locks. Copying the table per
/// thread would also work but wastes the midstate cache.
class KeyTable {
 public:
  KeyTable(std::uint32_t self, std::uint32_t group_size, ByteView group_secret);

  std::uint32_t self() const noexcept { return self_; }
  std::uint32_t group_size() const noexcept { return static_cast<std::uint32_t>(keys_.size()); }

  /// Session key shared with `peer`.
  ByteView key_for(std::uint32_t peer) const;

  /// MAC of `message` for `peer`, keyed with the pairwise key. Uses the
  /// cached midstates — two compressions over the message hash instead of
  /// a full keyed rehash.
  Mac mac_for(std::uint32_t peer, ByteView message) const;
  Mac mac_for(std::uint32_t peer, const FrameVec& message) const;

  /// Verifies a MAC claimed to come from `peer`.
  bool verify_from(std::uint32_t peer, ByteView message, const Mac& mac) const;

  /// Full authenticator: one MAC per group member (including self, which
  /// keeps indexing trivial; receivers only check their own slot).
  std::vector<Mac> authenticator(ByteView message) const;

 private:
  std::uint32_t self_;
  std::vector<Bytes> keys_;      // keys_[j] = pairwise key with node j
  std::vector<HmacKey> cached_;  // cached_[j] = midstates for keys_[j]
};

}  // namespace rubin
