// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for PBFT request/batch digests and the blockchain's prev-hash links.
// Streaming interface so large payloads can be hashed without copying them
// into one contiguous buffer.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace rubin {

/// A 256-bit digest. Fixed-size array so it can live inline in messages.
using Digest = std::array<std::uint8_t, 32>;

std::string to_hex(const Digest& d);

class Sha256 {
 public:
  Sha256() noexcept { reset(); }

  /// Clears all state; the object can be reused for a new message.
  void reset() noexcept;

  /// Absorbs more input. May be called any number of times.
  void update(ByteView data) noexcept;

  /// Finalizes and returns the digest. The object must be reset() before
  /// being reused (finish() leaves it in a consumed state on purpose —
  /// accidentally appending to a finished hash is a bug we want loud).
  Digest finish() noexcept;

  /// One-shot convenience.
  static Digest hash(ByteView data) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> h_{};
  std::array<std::uint8_t, 64> buf_{};
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace rubin
