// A permissioned blockchain in the paper's target deployment (§I): four
// PBFT replicas inside a data center, communicating over RUBIN/RDMA,
// maintaining a replicated key/value ledger with hash-chained blocks.
// A client submits transactions and reads back consistent state; at the
// end we show every replica holds the same verified chain.
//
//   $ ./replicated_kv
#include <cstdio>

#include "chain/blockchain.hpp"
#include "workloads/bft_harness.hpp"

using namespace rubin;
using namespace rubin::reptor;

namespace {

sim::Task<> client_session(Client& client, bool& done) {
  co_await client.start();
  struct Op {
    const char* op;
    const char* note;
  };
  const Op ops[] = {
      {"put accounts/alice 100", "create alice"},
      {"put accounts/bob 50", "create bob"},
      {"get accounts/alice", "read alice"},
      {"put accounts/alice 75", "update alice"},
      {"get accounts/alice", "read updated alice"},
      {"del accounts/bob", "remove bob"},
      {"get accounts/bob", "read removed bob"},
      {"put blocks/motd hello-bft-world", "one more write"},
  };
  for (const Op& op : ops) {
    const Bytes result = co_await client.invoke(to_bytes(op.op));
    std::printf("  %-28s -> %-12s (%s)\n", op.op, to_string(result).c_str(),
                op.note);
  }
  done = true;
}

}  // namespace

int main() {
  std::printf("Replicated KV ledger: PBFT f=1, 4 replicas, RUBIN/RDMA transport\n\n");

  BftHarness h(Backend::kRubin, /*replicas=*/4, /*clients=*/1);
  ReplicaConfig cfg;
  cfg.batch_timeout = sim::microseconds(100);
  cfg.checkpoint_interval = 16;
  for (NodeId r = 0; r < 4; ++r) {
    cfg.self = r;
    h.add_replica(r, cfg, std::make_unique<chain::Blockchain>(/*block_size=*/3));
  }

  bool done = false;
  auto& client = h.add_client(4);
  h.sim().spawn(client_session(client, done));
  h.sim().run_until(sim::seconds(5));
  if (!done) {
    std::printf("client did not finish — protocol stalled?\n");
    return 1;
  }

  std::printf("\nledger state across the replica group:\n");
  const auto& chain0 = dynamic_cast<const chain::Blockchain&>(h.replica(0).app());
  for (NodeId r = 0; r < 4; ++r) {
    const auto& chain = dynamic_cast<const chain::Blockchain&>(h.replica(r).app());
    std::printf(
        "  replica %u: %llu txs, %llu blocks, tip %.16s…, chain %s, %s\n", r,
        static_cast<unsigned long long>(chain.executed()),
        static_cast<unsigned long long>(chain.height()),
        to_hex(chain.tip()).c_str(),
        chain.verify_chain() ? "verified" : "BROKEN",
        chain.tip() == chain0.tip() ? "in agreement" : "DIVERGED");
  }

  std::printf("\nblock chain at replica 0:\n");
  Digest prev = Sha256::hash(ByteView{});
  for (const chain::Block& b : chain0.blocks()) {
    std::printf("  block %llu: %zu txs, prev %.12s…, hash %.12s…\n",
                static_cast<unsigned long long>(b.height), b.txs.size(),
                to_hex(b.prev_hash).c_str(), to_hex(b.hash).c_str());
    prev = b.hash;
  }
  (void)prev;

  std::printf("\nclient: %llu requests, %llu retries, mean latency %.1f us\n",
              static_cast<unsigned long long>(client.stats().requests_sent),
              static_cast<unsigned long long>(client.stats().retries),
              client.latencies().mean());
  return 0;
}
