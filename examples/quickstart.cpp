// Quickstart: the RUBIN public API in ~100 lines.
//
// Builds a two-host simulated RoCE fabric, opens an RDMA channel through
// the connection manager, and runs a selector-driven echo server against
// a simple client — the minimal version of what the paper's Fig. 3
// measures. Everything is deterministic virtual time.
//
//   $ ./quickstart
#include <cstdio>

#include "net/fabric.hpp"
#include "rubin/context.hpp"
#include "rubin/selector.hpp"
#include "sim/simulator.hpp"
#include "verbs/cm.hpp"

using namespace rubin;

namespace {

// The echo server: one selector thread multiplexing accepts and reads —
// the Java-NIO programming model the paper recreates over RDMA (§III).
sim::Task<> echo_server(nio::RubinContext& ctx,
                        std::shared_ptr<nio::RdmaServerChannel> listener,
                        int expected_messages) {
  nio::RdmaSelector selector(ctx);
  selector.register_server(listener, nio::kOpConnect | nio::kOpAccept);

  Bytes buffer(64 * 1024);
  int echoed = 0;
  while (echoed < expected_messages) {
    const std::size_t ready = co_await selector.select(sim::milliseconds(10));
    if (ready == 0) break;  // idle timeout
    for (nio::RdmaSelectionKey* key : selector.selected()) {
      if (key->is_connectable()) {
        (void)listener->accept();  // complete the CM handshake
      }
      if (key->is_acceptable()) {
        while (auto channel = listener->next_established()) {
          std::printf("[server] accepted channel %llu from host %u\n",
                      static_cast<unsigned long long>(channel->id()),
                      channel->remote_host());
          selector.register_channel(std::move(channel), nio::kOpReceive);
        }
      }
      if (key->is_receivable() && key->channel()) {
        const std::size_t n = co_await key->channel()->read(buffer);
        if (n == 0) continue;
        std::size_t sent = 0;
        while (sent == 0) {
          sent = co_await key->channel()->write(ByteView(buffer).first(n));
        }
        ++echoed;
      }
    }
  }
  // Let the last posted echo leave the NIC before tearing the QPs down.
  co_await ctx.simulator().sleep(sim::milliseconds(1));
}

sim::Task<> echo_client(nio::RubinContext& ctx, int messages) {
  auto channel = ctx.connect(/*remote host=*/1, /*port=*/4711);
  while (channel->state() == nio::RdmaChannel::State::kConnecting) {
    co_await ctx.simulator().sleep(sim::microseconds(10));
  }
  std::printf("[client] connected, channel %llu\n",
              static_cast<unsigned long long>(channel->id()));

  Bytes rx(64 * 1024);
  for (int i = 0; i < messages; ++i) {
    const std::size_t size = 1024 << (i % 4);  // 1, 2, 4, 8 KB
    const Bytes msg = patterned_bytes(size, static_cast<std::uint64_t>(i));
    const sim::Time t0 = ctx.simulator().now();

    std::size_t sent = 0;
    while (sent == 0) sent = co_await channel->write(msg);
    const std::size_t n = co_await channel->read_await(rx);

    const bool intact =
        n == size && check_pattern(ByteView(rx).first(n), static_cast<std::uint64_t>(i));
    std::printf("[client] echo %2d: %5zu bytes in %6.1f us  %s\n", i, n,
                sim::to_us(ctx.simulator().now() - t0),
                intact ? "ok" : "CORRUPT");
  }
  const auto& stats = channel->stats();
  std::printf(
      "[client] channel stats: %llu sent (%llu inline, %llu zero-copy), "
      "%llu signaled completions, %llu doorbells\n",
      static_cast<unsigned long long>(stats.messages_sent),
      static_cast<unsigned long long>(stats.inline_sends),
      static_cast<unsigned long long>(stats.zero_copy_sends),
      static_cast<unsigned long long>(stats.signaled_completions),
      static_cast<unsigned long long>(stats.doorbells));
  channel->close();
}

}  // namespace

int main() {
  std::printf("RUBIN quickstart: RDMA-channel echo on a simulated 10G RoCE fabric\n\n");

  sim::Simulator sim;
  net::Fabric fabric(sim, net::CostModel::roce_10g(), /*hosts=*/2);
  verbs::Device client_dev(fabric, 0);
  verbs::Device server_dev(fabric, 1);
  verbs::ConnectionManager cm(fabric);
  nio::RubinContext client_ctx(client_dev, cm);
  nio::RubinContext server_ctx(server_dev, cm);

  constexpr int kMessages = 8;
  auto listener = server_ctx.listen(4711);
  sim.spawn(echo_server(server_ctx, listener, kMessages));
  sim.spawn(echo_client(client_ctx, kMessages));
  sim.run();

  std::printf("\ndone: %llu frames crossed the fabric, %.1f KB on the wire\n",
              static_cast<unsigned long long>(fabric.frames_delivered()),
              static_cast<double>(fabric.bytes_on_wire()) / 1024.0);
  return 0;
}
