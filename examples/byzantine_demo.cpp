// Byzantine fault demo: the replica group survives its own primary.
//
// Act 1 — replica 0 leads and everything hums.
// Act 2 — replica 0 turns Byzantine (accepts requests, never proposes:
//          a liveness attack invisible to crash detectors).
// Act 3 — the client's retransmissions tip off the backups, their
//          watchdogs fire, a view change elects replica 1, and service
//          resumes — with nothing executed twice and all honest replicas
//          in agreement.
//
// The fault, the run, and the verdict all come from FaultLab: the demo
// declares a Scenario (who is Byzantine, how the group is shaped) and
// the Lab injects it, drives the client, and checks safety + liveness.
//
//   $ ./byzantine_demo
#include <cstdio>

#include "faultlab/lab.hpp"

using namespace rubin;
using namespace rubin::faultlab;
using namespace rubin::reptor;

int main() {
  std::printf(
      "Byzantine primary demo: PBFT f=1, 4 replicas over RUBIN/RDMA.\n"
      "Replica 0 is a *silent primary* — it accepts client requests and\n"
      "then does nothing, hoping the system stalls.\n\n");

  Scenario s;
  s.name = "byzantine-demo";
  s.description = "silent primary removed by a view change";
  s.n = 4;
  s.clients = 1;
  s.requests = 6;
  s.replica_cfg.batch_timeout = sim::microseconds(100);
  s.replica_cfg.view_change_timeout = sim::milliseconds(5);
  s.client_cfg.retry_timeout = sim::milliseconds(4);
  s.strategies[0] = "silent-primary";  // the whole fault injection

  Lab lab(std::move(s));
  const Report r = lab.run();

  std::printf("requests completed: %llu/%llu, last at %.2f ms\n",
              static_cast<unsigned long long>(r.completions),
              static_cast<unsigned long long>(r.expected_completions),
              sim::to_ms(r.finished_at));
  std::printf("client retries (the backups' tip-off): %llu\n\n",
              static_cast<unsigned long long>(r.client_retries));

  std::printf("post-mortem:\n");
  for (NodeId rep_id = 0; rep_id < 4; ++rep_id) {
    const Replica& rep = lab.replica(rep_id);
    std::printf(
        "  replica %u: view %llu%s, executed %llu, view-changes sent %llu%s\n",
        rep_id, static_cast<unsigned long long>(rep.view()),
        rep.is_primary() ? " (primary)" : "",
        static_cast<unsigned long long>(rep.stats().requests_executed),
        static_cast<unsigned long long>(rep.stats().view_changes),
        rep_id == 0 ? "  <- the saboteur" : "");
  }

  std::printf("\nchecker verdict: safety %s, no forgery %s, liveness %s "
              "(recovered %.2f ms after the fault)\n",
              r.verdict.safe ? "OK" : "VIOLATED",
              r.verdict.no_forgery ? "OK" : "VIOLATED",
              r.verdict.live ? "OK" : "LOST", sim::to_ms(r.verdict.recovery));
  if (!r.passed()) {
    std::printf("\nFAILED: %s\n", r.verdict.detail.c_str());
    return 1;
  }
  std::printf(
      "\nThe watchdogs fired after the client's retransmissions reached the\n"
      "backups; view %llu elected replica %llu as the new primary and the\n"
      "protocol resumed. The faulty replica could delay, but not stop or\n"
      "corrupt, the service — the BFT guarantee the paper builds on (§II-B).\n",
      static_cast<unsigned long long>(r.final_view),
      static_cast<unsigned long long>(r.final_view % 4));
  return 0;
}
