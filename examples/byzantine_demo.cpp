// Byzantine fault demo: the replica group survives its own primary.
//
// Act 1 — replica 0 leads and everything hums.
// Act 2 — replica 0 turns Byzantine (accepts requests, never proposes:
//          a liveness attack invisible to crash detectors).
// Act 3 — the client's retransmissions tip off the backups, their
//          watchdogs fire, a view change elects replica 1, and service
//          resumes — with nothing executed twice and all honest replicas
//          in agreement.
//
//   $ ./byzantine_demo
#include <cstdio>

#include "common/codec.hpp"
#include "workloads/bft_harness.hpp"

using namespace rubin;
using namespace rubin::reptor;

namespace {

sim::Task<> run_client(BftHarness& h, Client& client, bool& done) {
  co_await client.start();
  for (int i = 1; i <= 6; ++i) {
    const sim::Time t0 = h.sim().now();
    const Bytes result = co_await client.invoke(to_bytes("add:10"));
    Decoder d(result);
    std::printf("[%7.2f ms] request %d done: counter=%llu  (%.1f us, view %llu)\n",
                sim::to_ms(h.sim().now()), i,
                static_cast<unsigned long long>(d.get_u64().value_or(0)),
                sim::to_us(h.sim().now() - t0),
                static_cast<unsigned long long>(client.known_view()));
  }
  done = true;
}

}  // namespace

int main() {
  std::printf(
      "Byzantine primary demo: PBFT f=1, 4 replicas over RUBIN/RDMA.\n"
      "Replica 0 is a *silent primary* — it accepts client requests and\n"
      "then does nothing, hoping the system stalls.\n\n");

  BftHarness h(Backend::kRubin, 4, 1);
  ReplicaConfig cfg;
  cfg.batch_timeout = sim::microseconds(100);
  cfg.view_change_timeout = sim::milliseconds(5);
  h.add_replicas({{0, FaultMode::kSilentPrimary}}, cfg);

  ClientConfig ccfg;
  ccfg.retry_timeout = sim::milliseconds(4);
  auto& client = h.add_client(4, ccfg);

  bool done = false;
  h.sim().spawn(run_client(h, client, done));
  h.sim().run_until(sim::seconds(5));

  std::printf("\npost-mortem:\n");
  for (NodeId r = 0; r < 4; ++r) {
    const Replica& rep = h.replica(r);
    std::printf(
        "  replica %u: view %llu%s, executed %llu, view-changes sent %llu%s\n",
        r, static_cast<unsigned long long>(rep.view()),
        rep.is_primary() ? " (primary)" : "",
        static_cast<unsigned long long>(rep.stats().requests_executed),
        static_cast<unsigned long long>(rep.stats().view_changes),
        r == 0 ? "  <- the saboteur" : "");
  }
  if (!done) {
    std::printf("\nFAILED: the group never recovered.\n");
    return 1;
  }
  std::printf(
      "\nThe watchdogs fired after the client's retransmissions reached the\n"
      "backups; view %llu elected replica %llu as the new primary and the\n"
      "protocol resumed. The faulty replica could delay, but not stop or\n"
      "corrupt, the service — the BFT guarantee the paper builds on (§II-B).\n",
      static_cast<unsigned long long>(h.replica(1).view()),
      static_cast<unsigned long long>(h.replica(1).view() % 4));
  return 0;
}
