#!/usr/bin/env bash
# Wall-clock benchmark baseline for the simulation kernel.
#
# Runs the google-benchmark microbenches (bench_simkernel) plus wall-clock
# timings of two end-to-end virtual-time harnesses (bench_fig3_micro,
# bench_bft_e2e), and writes one JSON document to stdout or $2. Re-run on
# the same machine before/after a kernel change and diff the two files;
# BENCH_PR2.json in the repo root holds the PR-2 before/after pair.
#
# Usage: scripts/bench.sh [build-dir] [out.json]
#        scripts/bench.sh ab <base-build-dir> <head-build-dir> [out.json]
#        scripts/bench.sh cop <build-dir> [out.json]
#        scripts/bench.sh pop <build-dir> [out.json]
#   build-dir: configured *release-noaudit* build tree (default:
#              ./build-release). Audit-enabled builds measure the audit
#              layer, not the kernel — the script warns but proceeds.
#   out.json:  output path (default: stdout).
#
# Wall-clock methodology: this box is noisy (shared cores, coarse timer
# tick), so each end-to-end harness runs $RUBIN_BENCH_REPS times (default
# 5) and reports the *minimum* — the run least disturbed by neighbours.
# The google-benchmark side already does its own repetition internally.
#
# A/B mode: compares two build trees of the same benchmarks (e.g. main vs
# a perf branch). Runs are *interleaved* — base, head, base, head, … with
# the order flipped every repetition — so slow drift in machine load hits
# both sides equally instead of biasing whichever ran second. Reports the
# best of $RUBIN_BENCH_REPS per side (BM_RdmaChannelEcho items/sec and
# bench_bft_e2e wall seconds) plus head/base ratios. BENCH_PR3.json in
# the repo root holds the PR-3 zero-copy before/after pair.
#
# COP mode: serial-lanes vs worker-pool A/B of the SAME binary
# (bench_cop_scaling --wall serial / --wall pool=$RUBIN_COP_POOL,
# default 2), interleaved like ab mode. Build the release-parallel
# preset for it — without RUBIN_PARALLEL_LANES the pool side degrades to
# inline execution and the A/B measures only submit-path overhead. The
# binary prints its virtual-time throughput; the script asserts the two
# sides printed identical digits (the determinism contract) and reports
# wall seconds per side. BENCH_PR5.json holds the PR-5 pair.
#
# POP mode: SRQ vs per-QP A/B of the SAME binary (bench_population_scaling
# --wall srq / --wall perqp, $RUBIN_POP_CLIENTS clients, default 10000),
# interleaved like cop mode. The two sides run *different* receive
# provisioning, so their numbers legitimately differ; the determinism
# contract here is per side — every rep of a side must print an identical
# pop_wall line (virtual time is a pure function of the scenario). The
# script reports wall seconds and server receive-state bytes/connection
# per side plus the srq/perqp memory ratio. BENCH_PR9.json holds the PR-9
# pair.
set -eu

cd "$(dirname "$0")/.."

# ---------------------------------------------------------------- cop mode ---

if [ "${1:-}" = "cop" ]; then
  DIR="${2:?bench.sh cop: missing build dir}"
  OUT="${3:-}"
  REPS="${RUBIN_BENCH_REPS:-5}"
  POOL="${RUBIN_COP_POOL:-2}"
  BIN="$DIR/bench/bench_cop_scaling"
  [ -x "$BIN" ] || {
    echo "bench.sh cop: missing $BIN — build the release-parallel preset:" >&2
    echo "  cmake --preset release-parallel && cmake --build $DIR --target bench_cop_scaling" >&2
    exit 1
  }

  TMP=$(mktemp -d)
  trap 'rm -rf "$TMP"' EXIT

  run_cop_side() { # $1=side-name $2=mode-arg
    start=$(date +%s.%N)
    "$BIN" --wall "$2" > "$TMP/$1.last" 2>/dev/null
    end=$(date +%s.%N)
    awk -v a="$start" -v b="$end" 'BEGIN { printf "%.3f\n", b - a }' \
      >> "$TMP/$1.wall"
    grep -o 'virtual_rps=[0-9.]*' "$TMP/$1.last" >> "$TMP/$1.rps"
  }

  i=0
  while [ "$i" -lt "$REPS" ]; do
    if [ $((i % 2)) -eq 0 ]; then
      run_cop_side serial serial; run_cop_side pool "pool=$POOL"
    else
      run_cop_side pool "pool=$POOL"; run_cop_side serial serial
    fi
    i=$((i + 1))
  done

  SERIAL_S=$(sort -n "$TMP/serial.wall" | head -1)
  POOL_S=$(sort -n "$TMP/pool.wall" | head -1)
  SERIAL_RPS=$(sort -u "$TMP/serial.rps" | sed 's/virtual_rps=//')
  POOL_RPS=$(sort -u "$TMP/pool.rps" | sed 's/virtual_rps=//')
  if [ "$(printf '%s\n%s\n' "$SERIAL_RPS" "$POOL_RPS" | sort -u | wc -l)" -ne 1 ]; then
    echo "bench.sh cop: VIRTUAL OUTPUT DIVERGED: serial='$SERIAL_RPS' pool='$POOL_RPS'" >&2
    exit 1
  fi

  JSON=$(
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "host": "%s",\n' "$(uname -srm)"
    printf '  "host_cores": %s,\n' "$(nproc 2>/dev/null || echo 1)"
    printf '  "mode": "interleaved-cop-ab",\n'
    printf '  "reps": %s,\n' "$REPS"
    printf '  "build_dir": "%s",\n' "$DIR"
    printf '  "pool_threads": %s,\n' "$POOL"
    printf '  "virtual_rps_identical_across_modes": true,\n'
    printf '  "virtual_rps": %s,\n' "$SERIAL_RPS"
    printf '  "serial_wall_seconds": %s,\n' "$SERIAL_S"
    printf '  "pool_wall_seconds": %s,\n' "$POOL_S"
    printf '  "pool_over_serial_wall_speedup": %s\n' \
      "$(awk -v a="$SERIAL_S" -v b="$POOL_S" 'BEGIN { printf "%.3f", a / b }')"
    printf '}\n'
  )

  if [ -n "$OUT" ]; then
    printf '%s\n' "$JSON" >"$OUT"
    echo "bench.sh: wrote $OUT" >&2
  else
    printf '%s\n' "$JSON"
  fi
  exit 0
fi

# ---------------------------------------------------------------- pop mode ---

if [ "${1:-}" = "pop" ]; then
  DIR="${2:?bench.sh pop: missing build dir}"
  OUT="${3:-}"
  REPS="${RUBIN_BENCH_REPS:-5}"
  CLIENTS="${RUBIN_POP_CLIENTS:-10000}"
  BIN="$DIR/bench/bench_population_scaling"
  [ -x "$BIN" ] || {
    echo "bench.sh pop: missing $BIN — build it first:" >&2
    echo "  cmake --build $DIR --target bench_population_scaling" >&2
    exit 1
  }

  TMP=$(mktemp -d)
  trap 'rm -rf "$TMP"' EXIT

  run_pop_side() { # $1=side-name (also the --wall mode arg)
    start=$(date +%s.%N)
    "$BIN" --wall "$1" --clients "$CLIENTS" > "$TMP/$1.last" 2>/dev/null
    end=$(date +%s.%N)
    awk -v a="$start" -v b="$end" 'BEGIN { printf "%.3f\n", b - a }' \
      >> "$TMP/$1.wall"
    grep '^pop_wall ' "$TMP/$1.last" >> "$TMP/$1.lines"
  }

  i=0
  while [ "$i" -lt "$REPS" ]; do
    if [ $((i % 2)) -eq 0 ]; then
      run_pop_side srq; run_pop_side perqp
    else
      run_pop_side perqp; run_pop_side srq
    fi
    i=$((i + 1))
  done

  # Per-side determinism: a side's virtual-time output must be identical
  # on every rep. (The sides differ from each other by design.)
  for side in srq perqp; do
    if [ "$(sort -u "$TMP/$side.lines" | wc -l)" -ne 1 ]; then
      echo "bench.sh pop: VIRTUAL OUTPUT DIVERGED across $side reps:" >&2
      sort -u "$TMP/$side.lines" >&2
      exit 1
    fi
  done

  pop_field() { # $1=side $2=field-name — value from the pop_wall line
    sort -u "$TMP/$1.lines" | grep -o "$2=[0-9.]*" | sed "s/$2=//"
  }

  SRQ_S=$(sort -n "$TMP/srq.wall" | head -1)
  PERQP_S=$(sort -n "$TMP/perqp.wall" | head -1)
  SRQ_BPC=$(pop_field srq srv_bytes_per_conn)
  PERQP_BPC=$(pop_field perqp srv_bytes_per_conn)

  JSON=$(
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "host": "%s",\n' "$(uname -srm)"
    printf '  "host_cores": %s,\n' "$(nproc 2>/dev/null || echo 1)"
    printf '  "mode": "interleaved-pop-ab",\n'
    printf '  "reps": %s,\n' "$REPS"
    printf '  "build_dir": "%s",\n' "$DIR"
    printf '  "clients": %s,\n' "$CLIENTS"
    printf '  "per_side_output_identical_across_reps": true,\n'
    printf '  "srq": {\n'
    printf '    "wall_seconds": %s,\n' "$SRQ_S"
    printf '    "virtual_rps": %s,\n' "$(pop_field srq virtual_rps)"
    printf '    "p99_us": %s,\n' "$(pop_field srq p99_us)"
    printf '    "server_recv_bytes_per_conn": %s\n' "$SRQ_BPC"
    printf '  },\n'
    printf '  "perqp": {\n'
    printf '    "wall_seconds": %s,\n' "$PERQP_S"
    printf '    "virtual_rps": %s,\n' "$(pop_field perqp virtual_rps)"
    printf '    "p99_us": %s,\n' "$(pop_field perqp p99_us)"
    printf '    "server_recv_bytes_per_conn": %s\n' "$PERQP_BPC"
    printf '  },\n'
    printf '  "srq_over_perqp_recv_bytes_per_conn": %s\n' \
      "$(awk -v a="$SRQ_BPC" -v b="$PERQP_BPC" 'BEGIN { printf "%.4f", a / b }')"
    printf '}\n'
  )

  if [ -n "$OUT" ]; then
    printf '%s\n' "$JSON" >"$OUT"
    echo "bench.sh: wrote $OUT" >&2
  else
    printf '%s\n' "$JSON"
  fi
  exit 0
fi

# ---------------------------------------------------------------- A/B mode ---

if [ "${1:-}" = "ab" ]; then
  BASE_DIR="${2:?bench.sh ab: missing base build dir}"
  HEAD_DIR="${3:?bench.sh ab: missing head build dir}"
  OUT="${4:-}"
  REPS="${RUBIN_BENCH_REPS:-5}"
  MIN_TIME="${RUBIN_BENCH_MIN_TIME:-0.1}"

  for d in "$BASE_DIR" "$HEAD_DIR"; do
    for bin in "$d/bench/bench_simkernel" "$d/bench/bench_bft_e2e"; do
      [ -x "$bin" ] || { echo "bench.sh ab: missing $bin" >&2; exit 1; }
    done
  done

  # Per-side accumulators: best (max) items/sec per echo size, best (min)
  # wall seconds for the e2e bench. Plain files so the loop stays POSIX.
  TMP=$(mktemp -d)
  trap 'rm -rf "$TMP"' EXIT

  run_side() { # $1=side-name $2=build-dir
    side="$1"; dir="$2"
    "$dir/bench/bench_simkernel" --benchmark_filter='BM_RdmaChannelEcho' \
      --benchmark_min_time="$MIN_TIME" --benchmark_format=csv 2>/dev/null |
      grep '^"BM_' | awk -F, -v f="$TMP/$side.echo" '
        { gsub(/"/, "", $1); print $1, $7 >> f }'
    start=$(date +%s.%N)
    "$dir/bench/bench_bft_e2e" >/dev/null 2>&1
    end=$(date +%s.%N)
    awk -v a="$start" -v b="$end" 'BEGIN { printf "%.3f\n", b - a }' \
      >> "$TMP/$side.e2e"
  }

  i=0
  while [ "$i" -lt "$REPS" ]; do
    if [ $((i % 2)) -eq 0 ]; then
      run_side base "$BASE_DIR"; run_side head "$HEAD_DIR"
    else
      run_side head "$HEAD_DIR"; run_side base "$BASE_DIR"
    fi
    i=$((i + 1))
  done

  best_echo() { # $1=side $2=bench-name — max items/sec across reps
    awk -v n="$2" '$1 == n && ($2 + 0 > best) { best = $2 + 0 }
                   END { printf "%.0f", best }' "$TMP/$1.echo"
  }
  best_e2e() { # $1=side — min wall seconds across reps
    sort -n "$TMP/$1.e2e" | head -1
  }

  ratio() { awk -v a="$1" -v b="$2" 'BEGIN { printf "%.3f", a / b }'; }

  B1K=$(best_echo base 'BM_RdmaChannelEcho/1024')
  B64K=$(best_echo base 'BM_RdmaChannelEcho/65536')
  H1K=$(best_echo head 'BM_RdmaChannelEcho/1024')
  H64K=$(best_echo head 'BM_RdmaChannelEcho/65536')
  BE2E=$(best_e2e base)
  HE2E=$(best_e2e head)

  JSON=$(
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "host": "%s",\n' "$(uname -srm)"
    printf '  "mode": "interleaved-ab",\n'
    printf '  "reps": %s,\n' "$REPS"
    printf '  "base_build_dir": "%s",\n' "$BASE_DIR"
    printf '  "head_build_dir": "%s",\n' "$HEAD_DIR"
    printf '  "base": {\n'
    printf '    "rdma_channel_echo_1k_items_per_second": %s,\n' "$B1K"
    printf '    "rdma_channel_echo_64k_items_per_second": %s,\n' "$B64K"
    printf '    "bft_e2e_wall_seconds": %s\n' "$BE2E"
    printf '  },\n'
    printf '  "head": {\n'
    printf '    "rdma_channel_echo_1k_items_per_second": %s,\n' "$H1K"
    printf '    "rdma_channel_echo_64k_items_per_second": %s,\n' "$H64K"
    printf '    "bft_e2e_wall_seconds": %s\n' "$HE2E"
    printf '  },\n'
    printf '  "head_over_base": {\n'
    printf '    "rdma_channel_echo_1k": %s,\n' "$(ratio "$H1K" "$B1K")"
    printf '    "rdma_channel_echo_64k": %s,\n' "$(ratio "$H64K" "$B64K")"
    printf '    "bft_e2e_wall_speedup": %s\n' "$(ratio "$BE2E" "$HE2E")"
    printf '  }\n'
    printf '}\n'
  )

  if [ -n "$OUT" ]; then
    printf '%s\n' "$JSON" >"$OUT"
    echo "bench.sh: wrote $OUT" >&2
  else
    printf '%s\n' "$JSON"
  fi
  exit 0
fi
BUILD_DIR="${1:-build-release}"
OUT="${2:-}"
REPS="${RUBIN_BENCH_REPS:-5}"
MIN_TIME="${RUBIN_BENCH_MIN_TIME:-0.1}" # plain seconds; old benchmark
                                        # releases reject a "s" suffix

SIMKERNEL="${BUILD_DIR}/bench/bench_simkernel"
for bin in "$SIMKERNEL" "${BUILD_DIR}/bench/bench_fig3_micro" \
  "${BUILD_DIR}/bench/bench_bft_e2e"; do
  if [ ! -x "$bin" ]; then
    echo "bench.sh: missing $bin — build the release-noaudit preset first:" >&2
    echo "  cmake --preset release-noaudit && cmake --build ${BUILD_DIR} --target bench_simkernel bench_fig3_micro bench_bft_e2e" >&2
    exit 1
  fi
done

if strings "$SIMKERNEL" 2>/dev/null | grep -q 'audit failed'; then
  echo "bench.sh: WARNING: ${SIMKERNEL} appears to be an audit-enabled build; numbers will include audit overhead" >&2
fi

# Seconds-with-fraction wall clock around one command, best of $REPS.
wall_min() {
  best=""
  for _ in $(seq "$REPS"); do
    start=$(date +%s.%N)
    "$@" >/dev/null 2>&1
    end=$(date +%s.%N)
    elapsed=$(awk -v a="$start" -v b="$end" 'BEGIN { printf "%.3f", b - a }')
    if [ -z "$best" ] || awk -v e="$elapsed" -v b="$best" \
      'BEGIN { exit !(e < b) }'; then
      best="$elapsed"
    fi
  done
  printf '%s' "$best"
}

# --- 1. kernel microbenches (items/sec, google-benchmark) --------------------

SIMKERNEL_CSV=$("$SIMKERNEL" --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=csv 2>/dev/null | grep '^"BM_')

# --- 2. end-to-end harnesses (wall seconds, best of $REPS) -------------------

FIG3_S=$(wall_min "${BUILD_DIR}/bench/bench_fig3_micro")
BFT_S=$(wall_min "${BUILD_DIR}/bench/bench_bft_e2e")

# --- 3. emit JSON ------------------------------------------------------------

JSON=$(
  {
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "host": "%s",\n' "$(uname -srm)"
    printf '  "build_dir": "%s",\n' "$BUILD_DIR"
    printf '  "reps": %s,\n' "$REPS"
    printf '  "simkernel_items_per_second": {\n'
    printf '%s\n' "$SIMKERNEL_CSV" | awk -F, '
      { gsub(/"/, "", $1)
        line = sprintf("    \"%s\": %s", $1, ($7 == "" ? "null" : $7))
        lines = lines (lines == "" ? "" : ",\n") line }
      END { print lines }'
    printf '  },\n'
    printf '  "wall_seconds_best_of_reps": {\n'
    printf '    "bench_fig3_micro": %s,\n' "$FIG3_S"
    printf '    "bench_bft_e2e": %s\n' "$BFT_S"
    printf '  }\n'
    printf '}\n'
  }
)

if [ -n "$OUT" ]; then
  printf '%s\n' "$JSON" >"$OUT"
  echo "bench.sh: wrote $OUT" >&2
else
  printf '%s\n' "$JSON"
fi
