#!/usr/bin/env bash
# Wall-clock benchmark baseline for the simulation kernel.
#
# Runs the google-benchmark microbenches (bench_simkernel) plus wall-clock
# timings of two end-to-end virtual-time harnesses (bench_fig3_micro,
# bench_bft_e2e), and writes one JSON document to stdout or $2. Re-run on
# the same machine before/after a kernel change and diff the two files;
# BENCH_PR2.json in the repo root holds the PR-2 before/after pair.
#
# Usage: scripts/bench.sh [build-dir] [out.json]
#   build-dir: configured *release-noaudit* build tree (default:
#              ./build-release). Audit-enabled builds measure the audit
#              layer, not the kernel — the script warns but proceeds.
#   out.json:  output path (default: stdout).
#
# Wall-clock methodology: this box is noisy (shared cores, coarse timer
# tick), so each end-to-end harness runs $RUBIN_BENCH_REPS times (default
# 5) and reports the *minimum* — the run least disturbed by neighbours.
# The google-benchmark side already does its own repetition internally.
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-release}"
OUT="${2:-}"
REPS="${RUBIN_BENCH_REPS:-5}"
MIN_TIME="${RUBIN_BENCH_MIN_TIME:-0.1}" # plain seconds; old benchmark
                                        # releases reject a "s" suffix

SIMKERNEL="${BUILD_DIR}/bench/bench_simkernel"
for bin in "$SIMKERNEL" "${BUILD_DIR}/bench/bench_fig3_micro" \
  "${BUILD_DIR}/bench/bench_bft_e2e"; do
  if [ ! -x "$bin" ]; then
    echo "bench.sh: missing $bin — build the release-noaudit preset first:" >&2
    echo "  cmake --preset release-noaudit && cmake --build ${BUILD_DIR} --target bench_simkernel bench_fig3_micro bench_bft_e2e" >&2
    exit 1
  fi
done

if strings "$SIMKERNEL" 2>/dev/null | grep -q 'audit failed'; then
  echo "bench.sh: WARNING: ${SIMKERNEL} appears to be an audit-enabled build; numbers will include audit overhead" >&2
fi

# Seconds-with-fraction wall clock around one command, best of $REPS.
wall_min() {
  best=""
  for _ in $(seq "$REPS"); do
    start=$(date +%s.%N)
    "$@" >/dev/null 2>&1
    end=$(date +%s.%N)
    elapsed=$(awk -v a="$start" -v b="$end" 'BEGIN { printf "%.3f", b - a }')
    if [ -z "$best" ] || awk -v e="$elapsed" -v b="$best" \
      'BEGIN { exit !(e < b) }'; then
      best="$elapsed"
    fi
  done
  printf '%s' "$best"
}

# --- 1. kernel microbenches (items/sec, google-benchmark) --------------------

SIMKERNEL_CSV=$("$SIMKERNEL" --benchmark_min_time="$MIN_TIME" \
  --benchmark_format=csv 2>/dev/null | grep '^"BM_')

# --- 2. end-to-end harnesses (wall seconds, best of $REPS) -------------------

FIG3_S=$(wall_min "${BUILD_DIR}/bench/bench_fig3_micro")
BFT_S=$(wall_min "${BUILD_DIR}/bench/bench_bft_e2e")

# --- 3. emit JSON ------------------------------------------------------------

JSON=$(
  {
    printf '{\n'
    printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
    printf '  "host": "%s",\n' "$(uname -srm)"
    printf '  "build_dir": "%s",\n' "$BUILD_DIR"
    printf '  "reps": %s,\n' "$REPS"
    printf '  "simkernel_items_per_second": {\n'
    printf '%s\n' "$SIMKERNEL_CSV" | awk -F, '
      { gsub(/"/, "", $1)
        line = sprintf("    \"%s\": %s", $1, ($7 == "" ? "null" : $7))
        lines = lines (lines == "" ? "" : ",\n") line }
      END { print lines }'
    printf '  },\n'
    printf '  "wall_seconds_best_of_reps": {\n'
    printf '    "bench_fig3_micro": %s,\n' "$FIG3_S"
    printf '    "bench_bft_e2e": %s\n' "$BFT_S"
    printf '  }\n'
    printf '}\n'
  }
)

if [ -n "$OUT" ]; then
  printf '%s\n' "$JSON" >"$OUT"
  echo "bench.sh: wrote $OUT" >&2
else
  printf '%s\n' "$JSON"
fi
