#!/usr/bin/env bash
# Static lint pass for the RUBIN stack: clang-tidy (when installed) plus
# repo-specific greps that encode house rules no generic tool checks.
#
# Usage: scripts/check.sh [build-dir]
#   build-dir: a configured CMake build tree with compile_commands.json
#              (default: ./build). Needed only for the clang-tidy half.
#
# Exit status is non-zero when any check fails. The `lint` CMake target
# runs this script; CI runs it as its own job.
set -u

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
FAILURES=0

note() { printf '== %s\n' "$*"; }
fail() {
  printf 'check.sh: FAIL: %s\n' "$*" >&2
  FAILURES=$((FAILURES + 1))
}

# --- 1. clang-tidy over src/ -------------------------------------------------

if command -v clang-tidy >/dev/null 2>&1; then
  if [ -f "${BUILD_DIR}/compile_commands.json" ]; then
    note "clang-tidy ($(clang-tidy --version | head -n1))"
    # Sources only; headers are pulled in via HeaderFilterRegex.
    if ! find src -name '*.cpp' -print0 |
      xargs -0 clang-tidy -p "${BUILD_DIR}" --quiet; then
      fail "clang-tidy reported findings"
    fi
  else
    fail "no ${BUILD_DIR}/compile_commands.json — configure with CMake first"
  fi
else
  note "clang-tidy not installed — skipping (grep checks still run)"
fi

# --- 2. repo-specific greps --------------------------------------------------

# Naked new: allocation results must land in a smart pointer on the same
# line (the private-constructor std::shared_ptr<T>(new T(...)) idiom) or
# on the line directly after one. Raw owning pointers do not survive
# review in this codebase.
note "grep: naked new"
NAKED_NEW=$(grep -rn --include='*.cpp' --include='*.hpp' -E '\bnew [A-Za-z_]' src |
  grep -vE '_ptr<|//|"' |
  while IFS=: read -r file line rest; do
    prev=$(sed -n "$((line - 1))p" "$file")
    case "$prev" in
    *_ptr\<*) ;; # smart-pointer ctor split across lines
    *) printf '%s:%s:%s\n' "$file" "$line" "$rest" ;;
    esac
  done)
if [ -n "${NAKED_NEW}" ]; then
  printf '%s\n' "${NAKED_NEW}" >&2
  fail "naked new outside a smart-pointer constructor"
fi

# Non-deterministic randomness: the simulator must stay reproducible.
note "grep: std::rand / random_device / wall-clock seeding"
if grep -rn --include='*.cpp' --include='*.hpp' \
  -E 'std::rand\b|\bsrand\(|random_device|chrono::(steady|system|high_resolution)_clock' \
  src | grep -v '//'; then
  fail "non-deterministic randomness or wall clock in src/"
fi

# using namespace at namespace scope in headers leaks into every includer.
note "grep: using namespace in headers"
if grep -rn --include='*.hpp' -E '^\s*using namespace ' src; then
  fail "using-namespace directive in a header"
fi

# Include hygiene: every header guards with #pragma once, and no source
# file reaches into another module through a relative path.
note "include hygiene"
for h in $(find src -name '*.hpp'); do
  if ! head -n 40 "$h" | grep -q '#pragma once'; then
    fail "$h lacks #pragma once"
  fi
done
if grep -rn --include='*.cpp' --include='*.hpp' -E '#include "\.\./' src; then
  fail 'relative ("../") include paths — use module-rooted paths'
fi

# printf-family in src/ outside the logger and the audit layer: the
# simulator's output discipline routes everything through common/log.
note "grep: stray stdout/stderr writes"
if grep -rn --include='*.cpp' --include='*.hpp' \
  -E '\b(printf|fprintf|puts|std::cout|std::cerr)\b' src |
  grep -v 'common/log' | grep -v 'common/audit' | grep -v '//'; then
  fail "direct console I/O outside common/log and common/audit"
fi

# --- result ------------------------------------------------------------------

if [ "${FAILURES}" -ne 0 ]; then
  printf 'check.sh: %d check(s) failed\n' "${FAILURES}" >&2
  exit 1
fi
note "all checks passed"
