#!/usr/bin/env bash
# Static lint pass for the RUBIN stack: clang-tidy (when installed) plus
# rubinlint, the repo-native analyzer (tools/rubinlint, DESIGN.md §10).
#
# rubinlint replaced the grep-era house checks: it lexes real tokens, so
# strings/comments can't false-positive and a violation with a trailing
# `//` comment can't hide (the greps piped through `grep -v '//'`). Its
# rule catalogue: coroutine-suspension lifetime (coro-*), determinism
# (det-*), house style (house-*), and audit-counter cross-reference
# (audit-xref-*). Suppress a deliberate exception inline with
#   // rubinlint:allow(rule-id) rationale
# on the flagged line or the line above.
#
# Usage: scripts/check.sh [build-dir]
#   build-dir: a configured CMake build tree (default: ./build). Needed
#              for compile_commands.json (clang-tidy half) and for a
#              prebuilt rubinlint binary; when the binary is missing and
#              a compiler is available, the script builds a temporary
#              copy so the check never silently skips.
#
# Exit status is non-zero when any check fails. The `lint` CMake target
# runs this script; CI runs it as its own job.
set -u

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
FAILURES=0

note() { printf '== %s\n' "$*"; }
fail() {
  printf 'check.sh: FAIL: %s\n' "$*" >&2
  FAILURES=$((FAILURES + 1))
}

# --- 1. clang-tidy over src/ -------------------------------------------------

if command -v clang-tidy >/dev/null 2>&1; then
  if [ -f "${BUILD_DIR}/compile_commands.json" ]; then
    note "clang-tidy ($(clang-tidy --version | head -n1))"
    # Sources only; headers are pulled in via HeaderFilterRegex.
    if ! find src -name '*.cpp' -print0 |
      xargs -0 clang-tidy -p "${BUILD_DIR}" --quiet; then
      fail "clang-tidy reported findings"
    fi
  else
    fail "no ${BUILD_DIR}/compile_commands.json — configure with CMake first"
  fi
else
  note "clang-tidy not installed — skipping (rubinlint still runs)"
fi

# --- 2. rubinlint ------------------------------------------------------------

RUBINLINT="${BUILD_DIR}/tools/rubinlint/rubinlint"
if [ ! -x "${RUBINLINT}" ]; then
  # No configured build (or target not built yet): rubinlint is
  # dependency-free by design, so bootstrap a temporary binary.
  for cxx in c++ g++ clang++; do
    if command -v "$cxx" >/dev/null 2>&1; then
      note "building rubinlint with $cxx (no ${RUBINLINT})"
      RUBINLINT=$(mktemp -t rubinlint.XXXXXX)
      if ! "$cxx" -std=c++20 -O1 tools/rubinlint/lexer.cpp \
        tools/rubinlint/analyzer.cpp tools/rubinlint/main.cpp \
        -o "${RUBINLINT}"; then
        fail "could not build rubinlint"
        RUBINLINT=""
      fi
      break
    fi
  done
fi

if [ -n "${RUBINLINT}" ] && [ -x "${RUBINLINT}" ]; then
  note "rubinlint over src/ and tests/"
  if ! "${RUBINLINT}" --root . src tests; then
    fail "rubinlint reported findings"
  fi
elif [ -z "${RUBINLINT}" ]; then
  : # build failure already recorded
else
  fail "no rubinlint binary and no C++ compiler to bootstrap one"
fi

# --- result ------------------------------------------------------------------

if [ "${FAILURES}" -ne 0 ]; then
  printf 'check.sh: %d check(s) failed\n' "${FAILURES}" >&2
  exit 1
fi
note "all checks passed"
