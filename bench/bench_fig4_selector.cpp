// Reproduces Fig. 4 (a: latency, b: throughput): an echo server on the
// Reptor communication stack — window size 30, batching 10 — comparing
// the Java-NIO-style Poller/TCP backend against the RUBIN selector/RDMA
// backend. Both sides run the same Transport code; only the selector and
// wire change.
//
// Acceptance shape (paper §V):
//   * RUBIN latency ~19 % below TCP at 1 KB and ~20 % below at 100 KB,
//     with a weaker stretch in the 20-80 KB range (receive-side copy);
//   * RDMA throughput 25 % (100 KB) to 38 % (20 KB) above TCP.
#include <cstdio>

#include "bench_util.hpp"
#include "net/fabric.hpp"
#include "reptor/echo_stack.hpp"
#include "reptor/transport_nio.hpp"
#include "reptor/transport_rubin.hpp"
#include "rubin/context.hpp"
#include "tcpsim/tcp.hpp"
#include "verbs/cm.hpp"

using namespace rubin;
using namespace rubin::bench;
using namespace rubin::reptor;

namespace {

/// The swept series: the paper's two backends, plus this repo's adaptive
/// policy — same Reptor stack, but the channel runs TransportPolicy
/// kAdaptive (inline threshold derived from the cost model's crossover,
/// per-frame transport.pick.* decisions). On a two-sided-only transport
/// the selector's argmin lands on send/recv at every swept payload — the
/// same primitive the paper hand-tuned — so the adaptive series must
/// reproduce the fixed series exactly; the check at the bottom enforces
/// it. kRubinSge (informational section) keeps the fixed policy but posts
/// each client message as a two-slice FrameVec (id header + payload)
/// exercising the scatter/gather path end-to-end.
enum class Stack { kTcp, kRubinFixed, kRubinAdaptive, kRubinSge };

EchoResult run_stack(Stack which, std::size_t payload, std::uint64_t messages) {
  const bool use_rubin = which != Stack::kTcp;
  sim::Simulator sim;
  net::Fabric fabric(sim, net::CostModel::roce_10g(), 2);
  GroupLayout layout;
  layout.replica_count = 1;  // the echo server plays "replica 0"
  layout.hosts = {0, 1};

  std::unique_ptr<tcpsim::TcpNetwork> tcp;
  std::unique_ptr<verbs::ConnectionManager> cm;
  std::vector<std::unique_ptr<verbs::Device>> devs;
  std::vector<std::unique_ptr<nio::RubinContext>> ctxs;

  std::unique_ptr<Transport> server_t;
  std::unique_ptr<Transport> client_t;
  if (use_rubin) {
    cm = std::make_unique<verbs::ConnectionManager>(fabric);
    for (net::HostId h = 0; h < 2; ++h) {
      devs.push_back(std::make_unique<verbs::Device>(fabric, h));
      ctxs.push_back(std::make_unique<nio::RubinContext>(*devs.back(), *cm));
    }
    nio::ChannelConfig ccfg;
    ccfg.buffer_count = 64;
    ccfg.buffer_size = 128 * 1024;
    // Reptor integration (paper §IV): the transport's frames are
    // transient, so the send path copies into the pool; the receive side
    // copies too. Zero-copy send stays off — exactly the configuration
    // the paper measured through Reptor.
    ccfg.zero_copy_send = false;
    if (which == Stack::kRubinAdaptive) {
      ccfg.policy.mode = nio::TransportPolicy::Mode::kAdaptive;
    }
    server_t = std::make_unique<RubinTransport>(*ctxs[0], layout, 0, ccfg,
                                                /*batch_limit=*/10);
    client_t = std::make_unique<RubinTransport>(*ctxs[1], layout, 1, ccfg,
                                                /*batch_limit=*/10);
  } else {
    tcp = std::make_unique<tcpsim::TcpNetwork>(fabric);
    server_t = std::make_unique<NioTransport>(*tcp, layout, 0);
    client_t = std::make_unique<NioTransport>(*tcp, layout, 1);
  }

  // The Reptor stack's own per-message CPU (Java message objects,
  // serialization, queues) — identical for both backends, calibrated to
  // land absolute throughput near the paper's 10^4..10^5 rps band.
  StackCost stack;
  stack.per_message = sim::microseconds(1.5);
  stack.gbps = 40.0;  // ~5 GB/s serialization/deserialization
  server_t->set_stack_cost(stack);
  client_t->set_stack_cost(stack);

  auto server = std::make_unique<EchoServer>(sim, std::move(server_t));
  EchoClientConfig ecfg;
  ecfg.payload = payload;
  ecfg.window = 30;   // paper: window size 30
  ecfg.messages = messages;
  ecfg.multi_slice = which == Stack::kRubinSge;
  auto client = std::make_unique<EchoClient>(sim, std::move(client_t), ecfg);

  sim.spawn(server->run());
  sim.spawn(client->run());
  sim.run_until(sim::seconds(120));
  server->stop();
  sim.run_until(sim.now() + sim::milliseconds(10));
  return client->result();
}

}  // namespace

int main() {
  print_header("Fig. 4 — RUBIN vs Java NIO selector (Reptor echo stack)",
               "window=30, batching=10, 1000 msgs per payload");

  struct Row {
    std::size_t payload;
    EchoResult tcp, rubin, adaptive;
  };
  std::vector<Row> rows;
  for (std::size_t payload : paper_payloads()) {
    rows.push_back(Row{payload, run_stack(Stack::kTcp, payload, 1000),
                       run_stack(Stack::kRubinFixed, payload, 1000),
                       run_stack(Stack::kRubinAdaptive, payload, 1000)});
  }

  std::printf("--- Fig. 4a: latency (us, mean; window-induced queueing included) ---\n");
  print_row({"payload", "TCP(NIO)", "Rubin(RDMA)", "Rubin-adapt", "rubin-vs-tcp"});
  for (const Row& r : rows) {
    print_row({kb(r.payload), fmt(r.tcp.mean_latency_us),
               fmt(r.rubin.mean_latency_us), fmt(r.adaptive.mean_latency_us),
               fmt(100.0 * (1.0 - r.rubin.mean_latency_us / r.tcp.mean_latency_us)) + "%"});
  }

  std::printf("\n--- Fig. 4b: throughput (requests/s) ---\n");
  print_row({"payload", "TCP(NIO)", "Rubin(RDMA)", "Rubin-adapt", "rdma-vs-tcp"});
  for (const Row& r : rows) {
    print_row({kb(r.payload), fmt(r.tcp.requests_per_second, 0),
               fmt(r.rubin.requests_per_second, 0),
               fmt(r.adaptive.requests_per_second, 0),
               fmt(100.0 * (r.rubin.requests_per_second /
                                r.tcp.requests_per_second - 1.0)) + "%"});
  }

  std::printf("\n--- shape checks vs. paper claims ---\n");
  const Row& small = rows.front();
  const Row& large = rows.back();
  print_ratio("RUBIN latency below TCP @1KB   (paper ~19 %)",
              100.0 * (1.0 - small.rubin.mean_latency_us / small.tcp.mean_latency_us));
  print_ratio("RUBIN latency below TCP @100KB (paper ~20 %)",
              100.0 * (1.0 - large.rubin.mean_latency_us / large.tcp.mean_latency_us));
  print_ratio("RDMA throughput above TCP @100KB (paper ~25 %)",
              100.0 * (large.rubin.requests_per_second /
                           large.tcp.requests_per_second - 1.0));
  double best = 0;
  std::size_t best_payload = 0;
  for (const Row& r : rows) {
    const double gain = 100.0 * (r.rubin.requests_per_second /
                                     r.tcp.requests_per_second - 1.0);
    if (gain > best) {
      best = gain;
      best_payload = r.payload;
    }
  }
  std::printf("  peak RDMA throughput gain: %.1f %% at %s (paper: ~38 %% at 20KB)\n",
              best, kb(best_payload).c_str());

  std::printf("\n--- adaptive selector vs the fixed RUBIN strategy ---\n");
  // On a transport with no one-sided lane, the selector's argmin is
  // send/recv at every swept payload — the primitive the paper fixed by
  // hand. The adaptive run must therefore trace the fixed envelope
  // *exactly*: picks are recorded via send_slots_hint() with no pump, so
  // even the event order matches. Any divergence is a selector bug.
  bool envelope_ok = true;
  for (const Row& r : rows) {
    if (r.adaptive.mean_latency_us > r.rubin.mean_latency_us * 1.0001) {
      envelope_ok = false;
      std::printf("  ENVELOPE MISS at %s: adaptive %.2f us vs fixed %.2f us\n",
                  kb(r.payload).c_str(), r.adaptive.mean_latency_us,
                  r.rubin.mean_latency_us);
    }
  }
  if (envelope_ok) {
    std::printf("  adaptive == fixed envelope at every payload (selector's "
                "argmin lands on the paper's hand-tuned choice)\n");
  }

  std::printf("\n--- multi-slice SGE client frames (informational) ---\n");
  // Same stack, fixed policy, but the client posts two-slice FrameVecs:
  // the staging gather memcpy (charge and physical copy) disappears from
  // the send path. End-to-end the echo loop is wire/stack-bound, so the
  // virtual-time effect is a wash (small payloads can even shift batching
  // phase); the eliminated copy shows up as host CPU in bench_datapath
  // and as datapath.copy_bytes staying flat.
  print_row({"payload", "1-slice", "2-slice SGE", "delta"});
  for (const std::size_t payload : {std::size_t{1024}, std::size_t{102400}}) {
    const EchoResult flat = run_stack(Stack::kRubinFixed, payload, 1000);
    const EchoResult sge = run_stack(Stack::kRubinSge, payload, 1000);
    print_row({kb(payload), fmt(flat.mean_latency_us), fmt(sge.mean_latency_us),
               fmt(100.0 * (sge.mean_latency_us / flat.mean_latency_us - 1.0)) +
                   "%"});
  }
  // Mirror bench_fig3_micro: an envelope miss fails the CI bench-smoke
  // job instead of hiding in the printed table.
  return envelope_ok ? 0 : 1;
}
