// Reproduces Fig. 3 (a: latency, b: throughput): client-server echo with
// 1000 messages per payload size over TCP, raw RDMA Send/Receive, raw
// RDMA Read/Write, and the RUBIN RDMA Channel with its §IV optimizations.
//
// Acceptance shape (paper §V):
//   * Read/Write lowest latency: ~46 % below Send/Receive (small msgs),
//     TCP 53-79 % above Read/Write;
//   * RDMA Channel 33-43 % below TCP across the sweep;
//   * Channel beats Send/Receive by up to ~30 % below 16 KB (selective
//     signaling), degrades above (receive-side copy).
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "rubin/transport_select.hpp"
#include "workloads/echo_kit.hpp"

using namespace rubin;
using namespace rubin::bench;
using namespace rubin::workloads;

int main() {
  print_header("Fig. 3 — RDMA Channel micro-benchmark (echo, 1000 msgs)",
               "TCP vs RDMA Send/Recv vs RDMA Read/Write vs RDMA Channel");
  std::printf("(virtual time; deterministic, so one run == the paper's 5-run average)\n\n");

  struct Row {
    std::size_t payload;
    EchoPoint tcp, sr, rw, chan, fixed_sr, fixed_w, adaptive;
  };
  std::vector<Row> rows;

  // The adaptive comparison runs over one two-lane harness
  // (run_adaptive_echo): kFixed policies pin it to a single primitive,
  // kAdaptive picks per frame — so the envelope claim compares equals.
  nio::TransportPolicy fixed_sr{nio::TransportPolicy::Mode::kFixed,
                                nio::TransportKind::kSendRecv};
  nio::TransportPolicy fixed_w{nio::TransportPolicy::Mode::kFixed,
                               nio::TransportKind::kWrite};
  nio::TransportPolicy adaptive{nio::TransportPolicy::Mode::kAdaptive,
                                nio::TransportKind::kSendRecv};

  for (std::size_t payload : paper_payloads()) {
    EchoParams p;
    p.payload = payload;
    p.messages = 1000;
    Row row{payload,
            run_tcp_echo(p),
            run_sendrecv_echo(p),
            run_readwrite_echo(p),
            run_channel_echo(p, default_channel_config(payload)),
            run_adaptive_echo(p, fixed_sr),
            run_adaptive_echo(p, fixed_w),
            run_adaptive_echo(p, adaptive)};
    rows.push_back(row);
  }

  std::printf("--- Fig. 3a: latency (us, mean round trip) ---\n");
  print_row({"payload", "TCP", "Send/Recv", "Read/Write", "RDMA-Channel",
             "Fix-S/R", "Fix-Write", "Adaptive"});
  for (const Row& r : rows) {
    print_row({kb(r.payload), fmt(r.tcp.latency_us), fmt(r.sr.latency_us),
               fmt(r.rw.latency_us), fmt(r.chan.latency_us),
               fmt(r.fixed_sr.latency_us), fmt(r.fixed_w.latency_us),
               fmt(r.adaptive.latency_us)});
  }

  std::printf("\n--- Fig. 3b: throughput (krps, closed loop) ---\n");
  print_row({"payload", "TCP", "Send/Recv", "Read/Write", "RDMA-Channel",
             "Fix-S/R", "Fix-Write", "Adaptive"});
  for (const Row& r : rows) {
    print_row({kb(r.payload), fmt(r.tcp.krps, 2), fmt(r.sr.krps, 2),
               fmt(r.rw.krps, 2), fmt(r.chan.krps, 2), fmt(r.fixed_sr.krps, 2),
               fmt(r.fixed_w.krps, 2), fmt(r.adaptive.krps, 2)});
  }

  std::printf("\n--- shape checks vs. paper claims ---\n");
  auto pct_below = [](double a, double b) { return 100.0 * (1.0 - a / b); };
  const Row& small = rows.front();           // 1 KB
  const Row& large = rows.back();            // 100 KB
  print_ratio("R/W below Send/Recv @1KB   (paper ~46 %)",
              pct_below(small.rw.latency_us, small.sr.latency_us));
  print_ratio("TCP above R/W @1KB         (paper 53-79 %; ours overshoots)",
              100.0 * (small.tcp.latency_us / small.rw.latency_us - 1.0));
  print_ratio("TCP above R/W @100KB       (paper 53-79 %)",
              100.0 * (large.tcp.latency_us / large.rw.latency_us - 1.0));
  print_ratio("Channel below TCP @1KB     (paper 33-43 %)",
              pct_below(small.chan.latency_us, small.tcp.latency_us));
  print_ratio("Channel below TCP @100KB   (paper 33-43 %)",
              pct_below(large.chan.latency_us, large.tcp.latency_us));
  print_ratio("Channel below Send/Recv @1KB (paper: up to ~30 % below 16KB)",
              pct_below(small.chan.latency_us, small.sr.latency_us));
  print_ratio("Channel vs Send/Recv @100KB (paper: degraded; negative = worse)",
              pct_below(large.chan.latency_us, large.sr.latency_us));
  // Crossover: where the receive-side copy starts to beat the selective-
  // signaling gain (paper: around 16 KB).
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].chan.latency_us > rows[i].sr.latency_us) {
      std::printf("  channel/Send-Recv crossover at %s (paper: ~16KB)\n",
                  kb(rows[i].payload).c_str());
      break;
    }
  }

  std::printf("\n--- adaptive selector vs fixed strategies (same harness) ---\n");
  {
    const net::CostModel cm = net::CostModel::roce_10g();
    nio::TransportSelector sel(cm, adaptive);
    std::printf("  cost-model crossovers: inline<=%zuB (device cap), "
                "write beats send/recv from %zuB\n",
                sel.inline_crossover(), sel.write_crossover());
  }
  bool envelope_ok = true;
  for (const Row& r : rows) {
    const double best_fixed =
        std::min(r.fixed_sr.latency_us, r.fixed_w.latency_us);
    // Tolerance: the adaptive client recomputes selector inputs per frame
    // (a few post_call_cpu probes); allow 1% over the envelope.
    if (r.adaptive.latency_us > best_fixed * 1.01) {
      envelope_ok = false;
      std::printf("  ENVELOPE MISS @%s: adaptive %.2fus > best fixed %.2fus\n",
                  kb(r.payload).c_str(), r.adaptive.latency_us, best_fixed);
    }
  }
  if (envelope_ok) {
    std::printf("  adaptive traces the fixed-strategy envelope at every "
                "payload (<=1%% over min(Fix-S/R, Fix-Write))\n");
  }
  // Non-zero exit on an envelope miss: the CI bench-smoke job runs this
  // binary, so a selector regression fails the job, not just a table.
  return envelope_ok ? 0 : 1;
}
