// PopLab scalability bench (ISSUE 9 acceptance): sweep the client count
// and compare SRQ-backed receive paths against fully-provisioned per-QP
// rings. The claim under test is the DSN-paper scaling argument for
// shared receive queues: receive-state memory per connection must be
// strictly lower in SRQ mode at EVERY swept count, while the population
// stays live (all clients established, requests completing) at 100k+
// open-loop clients in a single process.
//
// Modes:
//   (default)        sweep 1k / 10k / 100k clients, both receive modes
//   --smoke          small counts (256 / 1024) for CI; same assertions
//   --clients N      sweep exactly {N} (up to 1M)
//   --wall srq|perqp one count (default 10k, or --clients N), one mode,
//                    greppable `virtual_rps=` line for scripts/bench.sh
//                    pop — virtual output must be bit-identical across
//                    repetitions of the same mode.
//
// Exit status is the CI gate: non-zero if any swept count fails the
// memory invariant or fails to sustain the population.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "net/fabric.hpp"
#include "poplab/population.hpp"
#include "sim/simulator.hpp"

using namespace rubin;
using namespace rubin::bench;

namespace {

poplab::PopulationSpec make_spec(std::uint32_t clients) {
  // One steady cohort at 50 rps per client over a 20ms schedule window,
  // with the aggregate capped at 250k rps — past that the single ack
  // server saturates and the sweep would measure overload shedding, not
  // connection-count scaling. Arrivals are Poisson-thinned, payloads
  // heavy-tailed; the spec shape is identical at every count so only the
  // population size varies.
  poplab::PopulationSpec spec;
  spec.name = "scaling";
  spec.seed = 2026;
  spec.duration = sim::milliseconds(20);
  poplab::CohortSpec c;
  c.name = "load";
  c.clients = clients;
  c.arrival.kind = poplab::ArrivalSchedule::Kind::kSteady;
  c.arrival.base_rps = std::min(50.0 * static_cast<double>(clients), 250000.0);
  c.op_space = 64;
  c.zipf_theta = 0.99;
  c.payload_lo = 64;
  c.payload_hi = 1024;
  c.payload_alpha = 1.3;
  c.timeout = sim::milliseconds(5);
  spec.cohorts.push_back(c);
  return spec;
}

poplab::PopulationReport run_population(std::uint32_t clients, bool use_srq) {
  poplab::PopulationSpec spec = make_spec(clients);
  poplab::PopulationConfig cfg;
  cfg.use_srq = use_srq;

  sim::Simulator sim;
  net::Fabric fabric{sim, net::CostModel::roce_10g(),
                     poplab::Population::host_count(spec, cfg)};
  poplab::Population pop{fabric, spec, cfg};
  sim.spawn(pop.run());
  sim.run();
  poplab::PopulationReport r = pop.report();
  // serve() is an infinite root task suspended on the mux; reap it while
  // the Population it references is still alive.
  sim.terminate_processes();
  return r;
}

const char* mode_name(bool use_srq) { return use_srq ? "srq" : "per-qp"; }

// The bench spec is single-cohort, so its percentiles are the population's.
double p50_of(const poplab::PopulationReport& r) {
  return r.cohorts.empty() ? 0.0 : r.cohorts.front().p50_us;
}
double p99_of(const poplab::PopulationReport& r) {
  return r.cohorts.empty() ? 0.0 : r.cohorts.front().p99_us;
}
double client_bytes_per_conn(const poplab::PopulationReport& r) {
  return r.clients > 0 ? static_cast<double>(r.client_receive_state_bytes) /
                             static_cast<double>(r.clients)
                       : 0.0;
}

void print_point(std::uint32_t clients, bool use_srq,
                 const poplab::PopulationReport& r) {
  print_row({std::to_string(clients), mode_name(use_srq),
             std::to_string(r.completions), std::to_string(r.timeouts),
             std::to_string(r.drops), fmt(p50_of(r), 1), fmt(p99_of(r), 1),
             fmt(r.throughput_rps / 1e3, 1),
             fmt(r.server_recv_bytes_per_conn, 1),
             fmt(client_bytes_per_conn(r), 1)});
}

int run_wall_mode(const char* mode, std::uint32_t clients) {
  bool use_srq;
  if (std::strcmp(mode, "srq") == 0) {
    use_srq = true;
  } else if (std::strcmp(mode, "perqp") == 0) {
    use_srq = false;
  } else {
    std::fprintf(stderr, "bench_population_scaling: --wall srq|perqp\n");
    return 2;
  }
  poplab::PopulationReport r = run_population(clients, use_srq);
  // The determinism contract scripts/bench.sh pop asserts: identical
  // digits across repetitions of the same mode.
  std::printf("pop_wall mode=%s clients=%u virtual_rps=%.3f completions=%llu "
              "p99_us=%.3f srv_bytes_per_conn=%.1f\n",
              mode_name(use_srq), clients, r.throughput_rps,
              static_cast<unsigned long long>(r.completions), p99_of(r),
              r.server_recv_bytes_per_conn);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::uint32_t> counts{1000, 10000, 100000};
  const char* wall = nullptr;
  std::uint32_t wall_clients = 10000;
  bool clients_set = false;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      counts = {256, 1024};
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      long long n = std::atoll(argv[++i]);
      if (n < 1 || n > 1000000) {
        std::fprintf(stderr, "--clients must be in [1, 1000000]\n");
        return 2;
      }
      counts = {static_cast<std::uint32_t>(n)};
      wall_clients = static_cast<std::uint32_t>(n);
      clients_set = true;
    } else if (std::strcmp(argv[i], "--wall") == 0 && i + 1 < argc) {
      wall = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--clients N] [--wall srq|perqp]\n",
                   argv[0]);
      return 2;
    }
  }
  (void)clients_set;
  if (wall != nullptr) return run_wall_mode(wall, wall_clients);

  print_header("Population scaling: SRQ vs per-QP receive provisioning",
               "open-loop clients, 50 rps each over a 20ms window; "
               "bytes/conn = receive-state bytes per connection");
  print_row({"clients", "mode", "completions", "timeouts", "drops", "p50us",
             "p99us", "krps", "srvB/conn", "cliB/conn"});

  bool ok = true;
  for (std::uint32_t n : counts) {
    poplab::PopulationReport srq = run_population(n, true);
    poplab::PopulationReport perqp = run_population(n, false);
    print_point(n, true, srq);
    print_point(n, false, perqp);

    // Gate 1: the population is sustained — every client established and
    // the schedule actually completed work in both modes.
    for (const auto* r : {&srq, &perqp}) {
      if (r->established != r->clients || r->completions == 0) {
        std::printf("  FAIL n=%u: population not sustained "
                    "(established=%u/%u completions=%llu)\n",
                    n, r->established, r->clients,
                    static_cast<unsigned long long>(r->completions));
        ok = false;
      }
    }
    // Gate 2: the memory claim — SRQ receive state per connection is
    // strictly below the per-QP baseline, server side and client side.
    if (!(srq.server_recv_bytes_per_conn < perqp.server_recv_bytes_per_conn)) {
      std::printf("  FAIL n=%u: server SRQ bytes/conn %.1f !< per-QP %.1f\n",
                  n, srq.server_recv_bytes_per_conn,
                  perqp.server_recv_bytes_per_conn);
      ok = false;
    }
    if (!(srq.client_receive_state_bytes < perqp.client_receive_state_bytes)) {
      std::printf("  FAIL n=%u: client SRQ recv-state %llu !< per-QP %llu\n",
                  n,
                  static_cast<unsigned long long>(srq.client_receive_state_bytes),
                  static_cast<unsigned long long>(
                      perqp.client_receive_state_bytes));
      ok = false;
    }
    print_ratio(
        ("n=" + std::to_string(n) + ": SRQ server recv-state vs per-QP").c_str(),
        perqp.server_recv_bytes_per_conn > 0
            ? 100.0 * srq.server_recv_bytes_per_conn /
                  perqp.server_recv_bytes_per_conn
            : 0.0);
  }

  std::printf("\n%s\n", ok ? "population-scaling: all gates PASS"
                           : "population-scaling: GATE FAILURES");
  return ok ? 0 : 1;
}
