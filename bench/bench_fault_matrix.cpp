// Extension E6 — the FaultLab fault matrix: every corpus scenario (crash,
// partition, loss, corruption, duplication, reordering, QP errors, NIC
// stalls, and five Byzantine strategies, at f=1 and f=2) runs under the
// safety/liveness checker. The table is the protocol's fault envelope:
// safety must hold in EVERY row, liveness in every row with <= f faults.
//
//   bench_fault_matrix            full corpus
//   bench_fault_matrix --smoke    CI cross-section (3 scenarios)
//   bench_fault_matrix --list     scenario names + descriptions
//   bench_fault_matrix <name>     one scenario
//
// Exit status is non-zero when any scenario misses its expected verdict,
// so CI can gate on the matrix directly.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "faultlab/corpus.hpp"
#include "faultlab/lab.hpp"

using namespace rubin;
using namespace rubin::bench;
using namespace rubin::faultlab;

namespace {

void print_report(const Report& r) {
  char faults[64];
  std::snprintf(faults, sizeof(faults), "%llu/%llu/%llu/%llu",
                static_cast<unsigned long long>(r.frames_dropped),
                static_cast<unsigned long long>(r.frames_corrupted),
                static_cast<unsigned long long>(r.frames_duplicated),
                static_cast<unsigned long long>(r.frames_reordered));
  char done[32];
  std::snprintf(done, sizeof(done), "%llu/%llu",
                static_cast<unsigned long long>(r.completions),
                static_cast<unsigned long long>(r.expected_completions));
  std::printf("%-28s %2u %3u/%u  %-5s %-6s %-5s %-6s %9s %5llu %8s %15s  %s\n",
              r.name.c_str(), r.n, r.faulty, r.f,
              r.verdict.safe ? "yes" : "NO",
              r.verdict.no_forgery ? "yes" : "NO",
              r.verdict.live ? "yes" : "no",
              r.expect_liveness ? "live" : "safe",
              r.verdict.recovery >= 0 ? fmt(sim::to_ms(r.verdict.recovery), 2).c_str()
                                      : "-",
              static_cast<unsigned long long>(r.final_view), done, faults,
              r.passed() ? "PASS" : "FAIL");
  if (!r.passed() && !r.verdict.detail.empty()) {
    std::printf("%-28s   ^ %s\n", "", r.verdict.detail.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string only;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--list") == 0) {
      for (const Scenario& s : corpus()) {
        std::printf("%-28s %s\n", s.name.c_str(), s.description.c_str());
      }
      return 0;
    } else {
      only = argv[i];
    }
  }

  std::vector<Scenario> scenarios;
  if (!only.empty()) {
    auto s = find_scenario(only);
    if (!s) {
      std::fprintf(stderr, "unknown scenario '%s' (try --list)\n",
                   only.c_str());
      return 2;
    }
    scenarios.push_back(std::move(*s));
  } else {
    scenarios = smoke ? smoke_corpus() : corpus();
  }

  print_header("E6 — FaultLab fault matrix",
               smoke ? "CI smoke cross-section over RUBIN/RDMA"
                     : "full scenario corpus over RUBIN/RDMA; safety "
                       "checked everywhere, liveness wherever faults <= f");
  std::printf("%-28s %2s %5s  %-5s %-6s %-5s %-6s %9s %5s %8s %15s\n",
              "scenario", "n", "flt/f", "safe", "clean", "live", "expect",
              "recov(ms)", "view", "done", "flt d/c/u/r");

  int failures = 0;
  std::uint64_t total_faults = 0;
  for (Scenario& s : scenarios) {
    Lab lab(std::move(s));
    const Report r = lab.run();
    print_report(r);
    if (!r.passed()) ++failures;
    total_faults += r.frames_dropped + r.frames_corrupted +
                    r.frames_duplicated + r.frames_reordered;
  }

  std::printf(
      "\n%zu scenarios, %d failed; %llu frames faulted in flight.\n"
      "Safety holds in every scenario (including beyond-envelope), and\n"
      "liveness in every scenario with at most f faulty replicas — the\n"
      "BFT guarantee the paper's protocols build on (PAPER.md §II-B).\n",
      scenarios.size(), failures,
      static_cast<unsigned long long>(total_faults));
  return failures == 0 ? 0 : 1;
}
