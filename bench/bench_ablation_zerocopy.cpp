// Ablation A3 (paper §IV + §VII): buffer copies on the channel's data
// path. Three send/receive strategies:
//   copy      — copy into the pooled send buffer; receive-side copy
//               (the fully-copying baseline)
//   zc-send   — register the application send buffer (the paper's
//               implemented optimization); receive-side copy remains
//   zc-both   — additionally hand the receive pool buffer to the app
//               without a copy (the paper's *planned* future work)
// The paper: copy for <=256 B messages, register beyond; and the receive
// copy is the measured large-message degradation in Figs. 3/4.
#include <cstdio>

#include "bench_util.hpp"
#include "common/codec.hpp"
#include "workloads/bft_harness.hpp"
#include "workloads/echo_kit.hpp"

using namespace rubin;
using namespace rubin::bench;
using namespace rubin::workloads;

namespace {

/// Mean request latency of a 4-replica PBFT group with the deployment
/// flag applied to every transport in the group (replicas and clients).
double run_bft_zerocopy(std::size_t request_size, bool zero_copy_receive) {
  reptor::BftHarness h(reptor::Backend::kRubin, 4, 1);
  h.set_zero_copy_receive(zero_copy_receive);
  reptor::ReplicaConfig cfg;
  cfg.batch_size = 8;
  cfg.batch_timeout = sim::microseconds(100);
  cfg.checkpoint_interval = 32;
  h.add_replicas({}, cfg);
  auto& client = h.add_client(4);
  int done = 0;
  h.sim().spawn([](reptor::Client& cl, std::size_t size,
                   int& done) -> sim::Task<> {
    co_await cl.start();
    std::string op = "add:1";
    op.resize(std::max(op.size(), size), 'x');
    for (int i = 0; i < 60; ++i) (void)co_await cl.invoke(to_bytes(op));
    ++done;
  }(client, request_size, done));
  while (done < 1 && h.sim().now() < sim::seconds(20)) {
    h.sim().run_until(h.sim().now() + sim::milliseconds(1));
  }
  h.stop_all();
  return h.client(0).latencies().mean();
}

}  // namespace

int main() {
  print_header("Ablation A3 — copy vs register (RDMA channel echo)",
               "send: pool-copy vs registered app buffer; recv: copy vs zero-copy");

  print_row({"payload", "copy", "zc-send", "zc-both", "send-gain", "recv-gain"});
  for (std::size_t payload :
       {std::size_t{256}, std::size_t{1024}, std::size_t{4096},
        std::size_t{16 * 1024}, std::size_t{64 * 1024},
        std::size_t{100 * 1024}}) {
    EchoParams p;
    p.payload = payload;
    p.messages = 500;

    nio::ChannelConfig copy = default_channel_config(payload);
    copy.zero_copy_send = false;
    copy.inline_threshold = 0;  // isolate the copy question
    nio::ChannelConfig zc_send = copy;
    zc_send.zero_copy_send = true;
    nio::ChannelConfig zc_both = zc_send;
    zc_both.zero_copy_receive = true;

    const double l_copy = run_channel_echo(p, copy).latency_us;
    const double l_send = run_channel_echo(p, zc_send).latency_us;
    const double l_both = run_channel_echo(p, zc_both).latency_us;
    print_row({kb(payload), fmt(l_copy), fmt(l_send), fmt(l_both),
               fmt(100.0 * (1.0 - l_send / l_copy)) + "%",
               fmt(100.0 * (1.0 - l_both / l_send)) + "%"});
  }
  std::printf(
      "\nsend-gain: registering the app buffer instead of copying (paper: done);\n"
      "recv-gain: removing the receive-side copy (paper: future work, §VII).\n"
      "Small messages gain little (fixed costs dominate; paper keeps copying\n"
      "below 256B and inlines them instead); large messages gain the most.\n");

  // The deployment opt-in, end to end: the zero_copy_receive flag plumbed
  // through the harness reaches every transport of a PBFT group, so this
  // measures what a *deployment* gains by flipping it — agreement compute
  // dilutes the per-frame copy saving the echo rows isolate.
  std::printf("\n--- deployment opt-in: PBFT f=1 request latency, "
              "zero_copy_receive off vs on ---\n");
  print_row({"req-size", "copy-recv", "zc-recv", "gain"});
  for (std::size_t size : {std::size_t{1024}, std::size_t{16 * 1024},
                           std::size_t{64 * 1024}}) {
    const double off = run_bft_zerocopy(size, false);
    const double on = run_bft_zerocopy(size, true);
    print_row({kb(size), fmt(off), fmt(on),
               fmt(100.0 * (1.0 - on / off)) + "%"});
  }
  return 0;
}
