// Wall-clock microbenchmarks of the simulation substrate itself (google-
// benchmark): event-queue throughput, coroutine switch cost, and a full
// RDMA-channel echo round trip. These bound how much simulated traffic
// the reproduction can push per CPU-second — useful when sizing bigger
// experiments, and the one place where real time (not virtual time) is
// the right metric.
#include <benchmark/benchmark.h>

#include "net/fabric.hpp"
#include "sim/mailbox.hpp"
#include "sim/simulator.hpp"
#include "workloads/echo_kit.hpp"

namespace {

using namespace rubin;

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_after(i, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue);

void BM_CoroutinePingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Mailbox<int> a(sim);
    sim::Mailbox<int> b(sim);
    sim.spawn([](sim::Mailbox<int>& a, sim::Mailbox<int>& b) -> sim::Task<> {
      for (int i = 0; i < 500; ++i) {
        a.push(i);
        (void)co_await b.recv();
      }
    }(a, b));
    sim.spawn([](sim::Mailbox<int>& a, sim::Mailbox<int>& b) -> sim::Task<> {
      for (int i = 0; i < 500; ++i) {
        (void)co_await a.recv();
        b.push(i);
      }
    }(a, b));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutinePingPong);

void BM_RdmaChannelEcho(benchmark::State& state) {
  const auto payload = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    workloads::EchoParams p;
    p.payload = payload;
    p.messages = 100;
    benchmark::DoNotOptimize(workloads::run_channel_echo(
        p, workloads::default_channel_config(payload)));
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_RdmaChannelEcho)->Arg(1024)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
