// Wall-clock microbenchmarks of the simulation substrate itself (google-
// benchmark): event-queue throughput, coroutine switch cost, and a full
// RDMA-channel echo round trip. These bound how much simulated traffic
// the reproduction can push per CPU-second — useful when sizing bigger
// experiments, and the one place where real time (not virtual time) is
// the right metric.
#include <benchmark/benchmark.h>

#if defined(__GLIBC__) || defined(__linux__)
#include <malloc.h>
#endif

#include <cstdint>
#include <functional>

#include "net/fabric.hpp"
#include "sim/mailbox.hpp"
#include "sim/simulator.hpp"
#include "workloads/echo_kit.hpp"

namespace {

using namespace rubin;

void BM_EventQueue(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_after(i, [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.events_processed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue);

void BM_CoroutinePingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Mailbox<int> a(sim);
    sim::Mailbox<int> b(sim);
    sim.spawn([](sim::Mailbox<int>& a, sim::Mailbox<int>& b) -> sim::Task<> {
      for (int i = 0; i < 500; ++i) {
        a.push(i);
        (void)co_await b.recv();
      }
    }(a, b));
    sim.spawn([](sim::Mailbox<int>& a, sim::Mailbox<int>& b) -> sim::Task<> {
      for (int i = 0; i < 500; ++i) {
        (void)co_await a.recv();
        b.push(i);
      }
    }(a, b));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_CoroutinePingPong);

// ---------------------------------------------------- fast-path splits --
// The next four benchmarks isolate the PR-2 kernel fast paths against the
// erased baseline they bypass, so a regression in any single layer (SBO
// emplace, coroutine payload, same-instant ring, sorted run) shows up on
// its own line instead of being averaged into an end-to-end number.

/// Erased baseline: every event builds a UniqueFunction in a timer slot.
void BM_ScheduleErased(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t sink = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_after(i, [&sink] { ++sink; });
    }
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ScheduleErased);

/// Coroutine fast path: the same 1000 timed wakeups via schedule_resume
/// (one sleeping coroutine), no type erasure, no slot traffic.
void BM_ScheduleResume(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t sink = 0;
    sim.spawn([](sim::Simulator& s, std::uint64_t& sink) -> sim::Task<> {
      for (int i = 0; i < 1000; ++i) {
        co_await s.sleep(1);
        ++sink;
      }
    }(sim, sink));
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ScheduleResume);

/// Same-instant events through the FIFO ring (post at now): the path every
/// mailbox wakeup takes. Chained so the queue never empties until the end.
void BM_PostAtNowRing(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t sink = 0;
    std::function<void()> chain = [&] {
      if (++sink < 1000) sim.post([&chain] { chain(); });
    };
    sim.post([&chain] { chain(); });
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_PostAtNowRing);

/// The same chained workload forced onto the timer structures (post at
/// now + 1): what same-instant traffic would cost without the ring.
void BM_PostAtFutureHeap(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t sink = 0;
    std::function<void()> chain = [&] {
      if (++sink < 1000) sim.schedule_after(1, [&chain] { chain(); });
    };
    sim.schedule_after(1, [&chain] { chain(); });
    sim.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_PostAtFutureHeap);

/// Mailbox burst/drain on the growing ring: one producer fills, one
/// consumer drains, 8 messages in flight — the queue-depth regime the
/// protocol layers (pipelined consensus instances) actually run at.
void BM_MailboxBurst(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Mailbox<int> box(sim);
    sim.spawn([](sim::Simulator& s, sim::Mailbox<int>& box) -> sim::Task<> {
      for (int round = 0; round < 125; ++round) {
        for (int i = 0; i < 8; ++i) box.push(i);
        co_await s.sleep(1);
      }
    }(sim, box));
    sim.spawn([](sim::Mailbox<int>& box) -> sim::Task<> {
      std::uint64_t sink = 0;
      for (int i = 0; i < 1000; ++i) sink += static_cast<std::uint64_t>(
          co_await box.recv());
      benchmark::DoNotOptimize(sink);
    }(box));
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MailboxBurst);

void BM_RdmaChannelEcho(benchmark::State& state) {
  const auto payload = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    workloads::EchoParams p;
    p.payload = payload;
    p.messages = 100;
    benchmark::DoNotOptimize(workloads::run_channel_echo(
        p, workloads::default_channel_config(payload)));
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_RdmaChannelEcho)->Arg(1024)->Arg(65536);

}  // namespace

int main(int argc, char** argv) {
#if defined(__GLIBC__)
  // Each BM_RdmaChannelEcho iteration builds and tears down a whole
  // simulated world. Without these, glibc trims the freed arena back to
  // the OS after every teardown, and the next iteration pays minor page
  // faults to grow it again — a measurement artifact of the harness, not
  // a cost of the simulator. Keep the arena resident for the process.
  mallopt(M_TRIM_THRESHOLD, 512 * 1024 * 1024);
  mallopt(M_MMAP_THRESHOLD, 256 * 1024 * 1024);
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
