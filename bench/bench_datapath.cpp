// Wall-clock microbenchmarks of the zero-copy data plane (google-
// benchmark): SharedBytes handle traffic vs physical copies, HMAC with
// cached ipad/opad midstates vs from-scratch keyed hashing, and the
// multicast frame-encode path that combines both. Real time is the right
// metric here — these paths run on the host for every simulated message,
// so they bound how fast the big benches execute.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "common/shared_bytes.hpp"
#include "crypto/hmac.hpp"
#include "reptor/messages.hpp"
#include "verbs/types.hpp"

namespace {

using namespace rubin;

void BM_PayloadCopy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const SharedBytes src = SharedBytes::copy_of(patterned_bytes(n, 1));
  for (auto _ : state) {
    SharedBytes copy = SharedBytes::copy_of(src.view());
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PayloadCopy)->Arg(1024)->Arg(65536);

void BM_PayloadShare(benchmark::State& state) {
  // The zero-copy counterpart of BM_PayloadCopy: what a broadcast hop
  // costs per peer once payloads travel by handle.
  const auto n = static_cast<std::size_t>(state.range(0));
  const SharedBytes src = SharedBytes::copy_of(patterned_bytes(n, 1));
  for (auto _ : state) {
    SharedBytes ref = src;
    benchmark::DoNotOptimize(ref.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PayloadShare)->Arg(1024)->Arg(65536);

void BM_SharedBytesSlice(benchmark::State& state) {
  const SharedBytes src = SharedBytes::copy_of(patterned_bytes(65536, 2));
  std::size_t off = 0;
  for (auto _ : state) {
    SharedBytes s = src.slice(off, 4096);
    benchmark::DoNotOptimize(s.data());
    off = (off + 4096) % 61440;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SharedBytesSlice);

void BM_HmacFromScratch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Bytes key = to_bytes("session-key");
  const Bytes msg = patterned_bytes(n, 3);
  for (auto _ : state) {
    Digest d = hmac_sha256(key, msg);
    benchmark::DoNotOptimize(d.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HmacFromScratch)->Arg(64)->Arg(1024);

void BM_HmacMidstate(benchmark::State& state) {
  // Cached ipad/opad midstates: each MAC skips the two key-block
  // compressions. The win is largest on the short messages PBFT
  // authenticators actually cover.
  const auto n = static_cast<std::size_t>(state.range(0));
  const HmacKey key(to_bytes("session-key"));
  const Bytes msg = patterned_bytes(n, 3);
  for (auto _ : state) {
    Digest d = key.mac(msg);
    benchmark::DoNotOptimize(d.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_HmacMidstate)->Arg(64)->Arg(1024);

FrameVec multi_slice_frame(std::size_t total) {
  // A typical protocol frame: an 8-byte header slice plus the payload
  // split across the remaining inline slice slots.
  const std::size_t body = total - 8;
  FrameVec fv;
  fv.append(SharedBytes::copy_of(patterned_bytes(8, 7)));
  fv.append(SharedBytes::copy_of(patterned_bytes(body / 2, 8)));
  fv.append(SharedBytes::copy_of(patterned_bytes(body - body / 2, 9)));
  return fv;
}

void BM_FramePostFlattened(benchmark::State& state) {
  // What the pre-PR send path did with a multi-slice frame: gather every
  // slice into one contiguous staging buffer before posting (the
  // datapath.copy_bytes memcpy).
  const auto n = static_cast<std::size_t>(state.range(0));
  const FrameVec frame = multi_slice_frame(n);
  Bytes staging(n);
  for (auto _ : state) {
    const std::size_t copied = frame.copy_to(MutByteView(staging));
    benchmark::DoNotOptimize(staging.data());
    benchmark::DoNotOptimize(copied);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FramePostFlattened)->Arg(1024)->Arg(16384)->Arg(65536);

void BM_FramePostMultiSge(benchmark::State& state) {
  // The scatter/gather post path: build one SGE per slice (address +
  // length into registered space) and let the refcounted handles ride the
  // WR. No byte of payload is touched — this is the whole replacement
  // for the gather above, at any payload size.
  const auto n = static_cast<std::size_t>(state.range(0));
  const FrameVec frame = multi_slice_frame(n);
  for (auto _ : state) {
    verbs::SgeList sges;
    std::uint64_t addr = 0x1000;
    for (const SharedBytes& s : frame) {
      sges.push_back(verbs::Sge{addr, static_cast<std::uint32_t>(s.size()), 1});
      addr += s.size();
    }
    FrameVec ride = frame;  // the WR's payload references (refcount bumps)
    benchmark::DoNotOptimize(sges.total_length());
    benchmark::DoNotOptimize(ride.slice_count());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FramePostMultiSge)->Arg(1024)->Arg(16384)->Arg(65536);

void BM_EncodeForReplicas(benchmark::State& state) {
  // The PRE-PREPARE multicast encode: serialize once, MAC per peer with
  // cached midstates, return one refcounted frame shared by every send.
  const auto payload = static_cast<std::size_t>(state.range(0));
  const KeyTable keys(0, 4, to_bytes("group-secret"));
  reptor::PrePrepare pp;
  pp.view = 1;
  pp.seq = 7;
  pp.batch.push_back(reptor::Request{4, 1, patterned_bytes(payload, 5)});
  pp.digest = reptor::batch_digest(pp.batch);
  const reptor::Envelope env{0, reptor::Message{pp}};
  for (auto _ : state) {
    SharedBytes frame = reptor::encode_for_replicas(env, keys, 4);
    benchmark::DoNotOptimize(frame.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeForReplicas)->Arg(1024)->Arg(16384);

}  // namespace

BENCHMARK_MAIN();
