# Benchmark harnesses: each binary regenerates one figure/table or one
# ablation from DESIGN.md §4. They run on virtual time (deterministic),
# printing the same series the paper plots.
function(rubin_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE rubin_workloads rubin_chain)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR}/bench)
  # Keep build/bench free of anything but runnable binaries, so
  # `for b in build/bench/*; do $b; done` is clean.
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

rubin_add_bench(bench_fig3_micro)
rubin_add_bench(bench_fig4_selector)
rubin_add_bench(bench_ablation_signaling)
rubin_add_bench(bench_ablation_inline)
rubin_add_bench(bench_ablation_zerocopy)
rubin_add_bench(bench_bft_e2e)
rubin_add_bench(bench_cop_scaling)
rubin_add_bench(bench_simkernel)
target_link_libraries(bench_simkernel PRIVATE benchmark::benchmark)
rubin_add_bench(bench_datapath)
target_link_libraries(bench_datapath PRIVATE benchmark::benchmark)
rubin_add_bench(bench_group_scaling)
rubin_add_bench(bench_ablation_onesided)
rubin_add_bench(bench_selector_scaling)
rubin_add_bench(bench_viewchange_recovery)
target_link_libraries(bench_viewchange_recovery PRIVATE rubin_faultlab)
rubin_add_bench(bench_fault_matrix)
target_link_libraries(bench_fault_matrix PRIVATE rubin_faultlab)
rubin_add_bench(bench_population_scaling)
target_link_libraries(bench_population_scaling PRIVATE rubin_poplab)
