// Shared helpers for the benchmark binaries: fixed-width table printing
// and the payload grid the paper sweeps (1–100 KB).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace rubin::bench {

inline const std::vector<std::size_t>& paper_payloads() {
  static const std::vector<std::size_t> kPayloads{
      1 * 1024,  2 * 1024,  4 * 1024,  8 * 1024,
      16 * 1024, 32 * 1024, 64 * 1024, 100 * 1024};
  return kPayloads;
}

inline void print_header(const char* title, const char* caption) {
  std::printf("\n================================================================\n");
  std::printf("%s\n%s\n", title, caption);
  std::printf("================================================================\n");
}

inline void print_row(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& c : cells) std::printf("%*s", width, c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int prec = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}

inline std::string kb(std::size_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%zuKB", bytes / 1024);
  return buf;
}

/// "who wins by what factor" line used by the shape checks at the end of
/// each bench.
inline void print_ratio(const char* label, double ratio_percent) {
  std::printf("  %-58s %6.1f %%\n", label, ratio_percent);
}

}  // namespace rubin::bench
