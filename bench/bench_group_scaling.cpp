// Extension E3 (paper §I/§VII): group-size scaling. "In the BFT protocols
// that are deployed in blockchains, the number of participants will
// presumably be higher than in traditional deployment scenarios, thereby
// leading to a further increase in latency for inter-replica
// communication. This can be avoided by using RDMA."
//
// PBFT's agreement stage is O(n^2) messages; this bench grows the group
// (n = 4, 7, 10 → f = 1, 2, 3) and reports end-to-end request latency on
// both transports. The prediction: the RDMA advantage widens with n.
#include <cstdio>

#include "bench_util.hpp"
#include "workloads/bft_harness.hpp"

using namespace rubin;
using namespace rubin::bench;
using namespace rubin::reptor;

namespace {

double run_group(Backend backend, std::uint32_t n, int requests) {
  BftHarness h(backend, n, 1);
  ReplicaConfig cfg;
  cfg.batch_size = 4;
  cfg.batch_timeout = sim::microseconds(100);
  cfg.checkpoint_interval = 32;
  h.add_replicas({}, cfg);
  auto& client = h.add_client(n);

  int done = 0;
  h.sim().spawn([](Client& c, int count, int& done) -> sim::Task<> {
    co_await c.start();
    for (int i = 0; i < count; ++i) {
      (void)co_await c.invoke(to_bytes("add:1"));
    }
    ++done;
  }(client, requests, done));
  while (done < 1 && h.sim().now() < sim::seconds(30)) {
    h.sim().run_until(h.sim().now() + sim::milliseconds(1));
  }
  h.stop_all();
  return client.latencies().mean();
}

}  // namespace

int main() {
  print_header("E3 — group-size scaling (PBFT request latency, 1KB requests)",
               "n = 3f+1 replicas; agreement is O(n^2) messages");

  print_row({"n", "f", "tcp-lat(us)", "rdma-lat(us)", "rdma-gain"});
  double gain4 = 0;
  double gain_last = 0;
  for (std::uint32_t n : {4u, 7u, 10u}) {
    const double tcp = run_group(Backend::kNio, n, 60);
    const double rdma = run_group(Backend::kRubin, n, 60);
    const double gain = 100.0 * (1.0 - rdma / tcp);
    if (n == 4) gain4 = gain;
    gain_last = gain;
    print_row({std::to_string(n), std::to_string((n - 1) / 3), fmt(tcp),
               fmt(rdma), fmt(gain) + "%"});
  }
  std::printf(
      "\nRDMA latency gain grows from %.1f %% (n=4) to %.1f %% (n=10): the\n"
      "quadratic message complexity amplifies every per-message saving —\n"
      "the paper's argument for RDMA in blockchain-scale BFT groups (§I).\n",
      gain4, gain_last);
  return 0;
}
