// Extension E5 — fault recovery latency: the primary crash-stops mid-run
// and the group's view change restores service. The client-visible outage
// is (detection timeout + view-change protocol + re-proposal), so the
// recovery time tracks the watchdog setting — the availability/latency
// trade-off every BFT deployment tunes.
#include <cstdio>

#include "bench_util.hpp"
#include "workloads/bft_harness.hpp"

using namespace rubin;
using namespace rubin::bench;
using namespace rubin::reptor;

namespace {

struct Recovery {
  double steady_us = 0;   // median latency before the crash
  double outage_us = 0;   // worst request latency across the crash
  double after_us = 0;    // median latency after recovery
  std::uint64_t final_view = 0;
};

Recovery run_crash(sim::Time vc_timeout) {
  BftHarness h(Backend::kRubin, 4, 1);
  ReplicaConfig cfg;
  cfg.batch_timeout = sim::microseconds(50);
  cfg.view_change_timeout = vc_timeout;
  h.add_replicas({}, cfg);
  ClientConfig ccfg;
  ccfg.retry_timeout = sim::milliseconds(2);
  auto& client = h.add_client(4, ccfg);

  constexpr int kRequests = 60;
  std::vector<double> lat;
  int done = 0;
  h.sim().spawn([](sim::Simulator& s, Client& c, std::vector<double>& lat,
                   int& done) -> sim::Task<> {
    co_await c.start();
    for (int i = 0; i < kRequests; ++i) {
      const sim::Time t0 = s.now();
      (void)co_await c.invoke(to_bytes("add:1"));
      lat.push_back(sim::to_us(s.now() - t0));
      ++done;
    }
  }(h.sim(), client, lat, done));

  // Let a third of the workload run, then kill the primary.
  while (done < kRequests / 3) {
    h.sim().run_until(h.sim().now() + sim::microseconds(200));
  }
  h.replica(0).inject_crash();
  while (done < kRequests && h.sim().now() < sim::seconds(20)) {
    h.sim().run_until(h.sim().now() + sim::milliseconds(1));
  }
  h.stop_all();

  Recovery r;
  if (done < kRequests) return r;  // stalled — report zeros
  LatencyRecorder before;
  LatencyRecorder after;
  double worst = 0;
  for (int i = 0; i < kRequests; ++i) {
    if (i < kRequests / 3) before.add(lat[static_cast<std::size_t>(i)]);
    if (i > kRequests / 3 + 2) after.add(lat[static_cast<std::size_t>(i)]);
    worst = std::max(worst, lat[static_cast<std::size_t>(i)]);
  }
  r.steady_us = before.percentile(0.5);
  r.after_us = after.percentile(0.5);
  r.outage_us = worst;
  r.final_view = h.replica(1).view();
  return r;
}

}  // namespace

int main() {
  print_header("E5 — view-change recovery after a primary crash",
               "4 replicas over RUBIN; crash at 1/3 of the workload");

  print_row({"vc-timeout", "steady(us)", "outage(us)", "after(us)", "view"});
  for (sim::Time t : {sim::milliseconds(2), sim::milliseconds(5),
                      sim::milliseconds(10)}) {
    const Recovery r = run_crash(t);
    print_row({fmt(sim::to_ms(t), 0) + "ms", fmt(r.steady_us),
               fmt(r.outage_us), fmt(r.after_us),
               std::to_string(r.final_view)});
  }
  std::printf(
      "\nThe outage is dominated by fault *detection* (client retry + the\n"
      "backups' watchdogs), not by the view-change protocol itself: shrink\n"
      "the timeout and recovery shrinks with it, at the cost of spurious\n"
      "view changes under load jitter.\n");
  return 0;
}
