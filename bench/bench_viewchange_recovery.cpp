// Extension E5 — fault recovery latency: the primary crash-stops mid-run
// and the group's view change restores service. The client-visible outage
// is (detection timeout + view-change protocol + re-proposal), so the
// recovery time tracks the watchdog setting — the availability/latency
// trade-off every BFT deployment tunes.
//
// The crash is a FaultLab scenario: a predicate event fires after a third
// of the workload completes and crash-stops the primary; the Lab's
// checker independently confirms safety and times the recovery.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "faultlab/lab.hpp"

using namespace rubin;
using namespace rubin::bench;
using namespace rubin::faultlab;

namespace {

constexpr std::uint32_t kRequests = 60;

struct Recovery {
  double steady_us = 0;    // median latency before the crash
  double outage_us = 0;    // worst request latency across the crash
  double recovery_ms = 0;  // checker: crash -> first post-crash commit
  double after_us = 0;     // median latency after recovery
  std::uint64_t final_view = 0;
  bool ok = false;
};

Recovery run_crash(sim::Time vc_timeout) {
  Scenario s;
  s.name = "e5-primary-crash";
  s.description = "primary crash at 1/3 of the workload";
  s.n = 4;
  s.clients = 1;
  s.requests = kRequests;
  s.horizon = sim::seconds(20);
  s.replica_cfg.batch_timeout = sim::microseconds(50);
  s.replica_cfg.view_change_timeout = vc_timeout;
  s.client_cfg.retry_timeout = sim::milliseconds(2);
  s.runtime_faulty = {0};
  FaultEvent crash;
  crash.label = "crash the primary";
  crash.when = [](Lab& l) { return l.completions() >= kRequests / 3; };
  crash.action = [](Lab& l) { l.replica(0).inject_crash(); };
  crash.clears_faults = true;  // start the checker's recovery clock
  s.events.push_back(std::move(crash));

  Lab lab(std::move(s));
  const Report rep = lab.run();

  Recovery r;
  r.ok = rep.passed();
  if (!r.ok) return r;  // stalled — report zeros
  const std::vector<double>& lat = lab.latencies_us();
  LatencyRecorder before;
  LatencyRecorder after;
  double worst = 0;
  for (std::size_t i = 0; i < lat.size(); ++i) {
    if (i < kRequests / 3) before.add(lat[i]);
    if (i > kRequests / 3 + 2) after.add(lat[i]);
    worst = std::max(worst, lat[i]);
  }
  r.steady_us = before.percentile(0.5);
  r.after_us = after.percentile(0.5);
  r.outage_us = worst;
  r.recovery_ms = sim::to_ms(rep.verdict.recovery);
  r.final_view = rep.final_view;
  return r;
}

}  // namespace

int main() {
  print_header("E5 — view-change recovery after a primary crash",
               "4 replicas over RUBIN; FaultLab crash scenario at 1/3 of "
               "the workload");

  print_row({"vc-timeout", "steady(us)", "outage(us)", "recov(ms)",
             "after(us)", "view"});
  bool all_ok = true;
  for (sim::Time t : {sim::milliseconds(2), sim::milliseconds(5),
                      sim::milliseconds(10)}) {
    const Recovery r = run_crash(t);
    all_ok = all_ok && r.ok;
    print_row({fmt(sim::to_ms(t), 0) + "ms", fmt(r.steady_us),
               fmt(r.outage_us), fmt(r.recovery_ms, 2), fmt(r.after_us),
               std::to_string(r.final_view)});
  }
  std::printf(
      "\nThe outage is dominated by fault *detection* (client retry + the\n"
      "backups' watchdogs), not by the view-change protocol itself: shrink\n"
      "the timeout and recovery shrinks with it, at the cost of spurious\n"
      "view changes under load jitter.\n");
  return all_ok ? 0 : 1;
}
