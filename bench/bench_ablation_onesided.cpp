// Ablation A4 (paper §III-A): the one-sided channel RUBIN rejected vs the
// two-sided RDMA channel it adopted. Quantifies both sides of the
// trade-off the paper argues qualitatively:
//   * latency: one-sided polling wins (no completion events) — this is
//     the Fig. 3 Read/Write line wearing a channel API;
//   * cost: per-peer pinned, remotely-writable memory, no selector
//     integration (poll-only), and the §III-C attack surface.
#include <cstdio>

#include "bench_util.hpp"
#include "common/stats.hpp"
#include "net/fabric.hpp"
#include "rubin/write_channel.hpp"
#include "sim/simulator.hpp"
#include "verbs/cm.hpp"
#include "workloads/echo_kit.hpp"

using namespace rubin;
using namespace rubin::bench;

namespace {

double run_onesided_echo(std::size_t payload, int messages) {
  sim::Simulator sim;
  net::Fabric fabric(sim, net::CostModel::roce_10g(), 2);
  verbs::Device dev_a(fabric, 0);
  verbs::Device dev_b(fabric, 1);
  verbs::ConnectionManager cm(fabric);
  nio::RubinContext ctx_a(dev_a, cm);
  nio::RubinContext ctx_b(dev_b, cm);
  auto [a, b] = nio::OneSidedChannel::create_pair(ctx_a, ctx_b);

  bool up = true;
  sim.spawn([](nio::OneSidedChannel& b, bool& up) -> sim::Task<> {
    Bytes rx(192 * 1024);
    while (up) {
      const std::size_t n = co_await b.read_await(rx);
      std::size_t w = 0;
      while (w == 0) w = co_await b.write(ByteView(rx).first(n));
    }
  }(*b, up));

  LatencyRecorder lat;
  sim.spawn([](sim::Simulator& sim, nio::OneSidedChannel& a,
               std::size_t payload, int messages, LatencyRecorder& lat,
               bool& up) -> sim::Task<> {
    const Bytes msg = patterned_bytes(payload, 1);
    Bytes rx(192 * 1024);
    for (int i = 0; i < messages; ++i) {
      const sim::Time t0 = sim.now();
      std::size_t w = 0;
      while (w == 0) w = co_await a.write(msg);
      (void)co_await a.read_await(rx);
      lat.add(sim::to_us(sim.now() - t0));
    }
    up = false;
  }(sim, *a, payload, messages, lat, up));

  sim.run_until(sim::seconds(30));
  return lat.count() ? lat.mean() : 0.0;
}

}  // namespace

int main() {
  print_header("Ablation A4 — one-sided channel vs RUBIN two-sided channel",
               "the §III-A design decision, measured (echo, 500 msgs)");

  print_row({"payload", "one-sided", "two-sided", "1s-gain"});
  for (std::size_t payload :
       {std::size_t{1024}, std::size_t{4096}, std::size_t{16 * 1024},
        std::size_t{64 * 1024}, std::size_t{100 * 1024}}) {
    workloads::EchoParams p;
    p.payload = payload;
    p.messages = 500;
    const double two_sided =
        workloads::run_channel_echo(p, workloads::default_channel_config(payload))
            .latency_us;
    const double one_sided = run_onesided_echo(payload, 500);
    print_row({kb(payload), fmt(one_sided), fmt(two_sided),
               fmt(100.0 * (1.0 - one_sided / two_sided)) + "%"});
  }
  std::printf(
      "\nWhat the latency win costs (paper §III-A/§III-C, made concrete):\n"
      "  * ~2MB+ of pinned, remotely *writable* memory per peer (vs. private\n"
      "    receive pools) — an n-replica group exposes (n-1) rings per node;\n"
      "  * no completion events, so no selector integration: the receiver\n"
      "    burns a polling core per connection set;\n"
      "  * anyone with the ring rkey can forge or corrupt messages\n"
      "    undetectably at the transport level (see write_channel_test).\n");
  return 0;
}
