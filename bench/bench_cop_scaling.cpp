// Extension E2 (paper §II-C): Consensus-Oriented Parallelization. Reptor's
// point is that BFT protocol work (authenticator verification, protocol
// bookkeeping) parallelizes across consensus instances while execution
// stays totally ordered. This bench scales the number of COP lanes and
// reports saturated group throughput over the RUBIN transport.
#include <cstdio>

#include "bench_util.hpp"
#include "workloads/bft_harness.hpp"

using namespace rubin;
using namespace rubin::bench;
using namespace rubin::reptor;

namespace {

double run_cop(std::uint32_t pipelines, std::uint32_t n_clients,
               int per_client) {
  BftHarness h(Backend::kRubin, 4, n_clients);
  ReplicaConfig cfg;
  cfg.pipelines = pipelines;
  cfg.batch_size = 1;  // one consensus instance per request: stress lanes
  cfg.batch_timeout = sim::microseconds(20);
  cfg.checkpoint_interval = 64;
  cfg.window = 256;
  // Make the parallelizable work dominate (heavier MACs, like a larger
  // group or software crypto).
  cfg.costs.mac_fixed = sim::microseconds(2.5);
  cfg.costs.handle_fixed = sim::microseconds(1.5);
  h.add_replicas({}, cfg);

  int done = 0;
  for (std::uint32_t c = 0; c < n_clients; ++c) {
    auto& client = h.add_client(4 + c);
    h.sim().spawn([](Client& cl, int count, int& done) -> sim::Task<> {
      co_await cl.start();
      for (int i = 0; i < count; ++i) {
        (void)co_await cl.invoke(to_bytes("add:1"));
      }
      ++done;
    }(client, per_client, done));
  }
  const sim::Time t0 = h.sim().now();
  while (done < static_cast<int>(n_clients) &&
         h.sim().now() < sim::seconds(60)) {
    h.sim().run_until(h.sim().now() + sim::milliseconds(1));
  }
  const double secs = sim::to_s(h.sim().now() - t0);
  const double executed =
      static_cast<double>(h.replica(0).stats().requests_executed);
  h.stop_all();
  return secs > 0 ? executed / secs : 0;
}

}  // namespace

int main() {
  print_header("E2 — COP scaling (PBFT over RUBIN, 4 replicas, 8 clients)",
               "throughput vs number of consensus pipelines (lanes)");

  print_row({"pipelines", "rps", "speedup"});
  double base = 0;
  for (std::uint32_t p : {1u, 2u, 4u, 8u}) {
    const double rps = run_cop(p, 8, 30);
    if (p == 1) base = rps;
    print_row({std::to_string(p), fmt(rps, 0), fmt(rps / base, 2) + "x"});
  }
  std::printf(
      "\nAgreement-stage crypto parallelizes across lanes; the shared\n"
      "transport thread and ordered execution bound the speedup (Amdahl),\n"
      "matching the COP paper's observation that parallelizing *instances*\n"
      "beats parallelizing pipeline *stages*.\n");
  return 0;
}
