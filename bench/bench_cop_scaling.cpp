// Extension E2 (paper §II-C): Consensus-Oriented Parallelization. Reptor's
// point is that BFT protocol work (authenticator verification, protocol
// bookkeeping) parallelizes across consensus instances while execution
// stays totally ordered. This bench scales the number of COP lanes and
// reports saturated group throughput over the RUBIN transport.
//
// Wall-clock A/B mode (PR 5): `--wall serial` runs the same COP-heavy
// workload with lanes on the simulator thread; `--wall pool=N` attaches
// an N-thread WorkerPool so lane verify/decode actually runs on other
// host cores. Both print the *virtual-time* throughput, which must be
// bit-identical between modes — only wall seconds (measured by
// scripts/bench.sh around the process) may differ. In builds without
// RUBIN_PARALLEL_LANES, pool=N degrades to inline execution and the A/B
// measures pure submit-path overhead.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "bench_util.hpp"
#include "workloads/bft_harness.hpp"

using namespace rubin;
using namespace rubin::bench;
using namespace rubin::reptor;

namespace {

/// `pool_threads` < 0 keeps lanes serial; >= 0 attaches a WorkerPool of
/// that width (0 = inline execution through the submit path).
double run_cop(std::uint32_t pipelines, std::uint32_t n_clients,
               int per_client, int pool_threads = -1) {
  BftHarness h(Backend::kRubin, 4, n_clients);
  if (pool_threads >= 0) {
    h.enable_lane_pool(static_cast<std::uint32_t>(pool_threads));
  }
  ReplicaConfig cfg;
  cfg.pipelines = pipelines;
  cfg.batch_size = 1;  // one consensus instance per request: stress lanes
  cfg.batch_timeout = sim::microseconds(20);
  cfg.checkpoint_interval = 64;
  cfg.window = 256;
  // Make the parallelizable work dominate (heavier MACs, like a larger
  // group or software crypto).
  cfg.costs.mac_fixed = sim::microseconds(2.5);
  cfg.costs.handle_fixed = sim::microseconds(1.5);
  h.add_replicas({}, cfg);

  int done = 0;
  for (std::uint32_t c = 0; c < n_clients; ++c) {
    auto& client = h.add_client(4 + c);
    h.sim().spawn([](Client& cl, int count, int& done) -> sim::Task<> {
      co_await cl.start();
      for (int i = 0; i < count; ++i) {
        (void)co_await cl.invoke(to_bytes("add:1"));
      }
      ++done;
    }(client, per_client, done));
  }
  const sim::Time t0 = h.sim().now();
  while (done < static_cast<int>(n_clients) &&
         h.sim().now() < sim::seconds(60)) {
    h.sim().run_until(h.sim().now() + sim::milliseconds(1));
  }
  const double secs = sim::to_s(h.sim().now() - t0);
  const double executed =
      static_cast<double>(h.replica(0).stats().requests_executed);
  h.stop_all();
  return secs > 0 ? executed / secs : 0;
}

int run_wall_mode(const char* mode) {
  int pool_threads = -1;
  if (std::strcmp(mode, "serial") == 0) {
    pool_threads = -1;
  } else if (std::strncmp(mode, "pool=", 5) == 0) {
    pool_threads = std::atoi(mode + 5);
    if (pool_threads < 0) pool_threads = 0;
  } else {
    std::fprintf(stderr,
                 "usage: bench_cop_scaling [--wall serial|pool=N]\n");
    return 2;
  }
  // Several fresh worlds of the COP-heaviest configuration: enough lane
  // compute per process for scripts/bench.sh to time meaningfully.
  constexpr int kWorlds = 3;
  double rps_sum = 0;
  for (int r = 0; r < kWorlds; ++r) {
    rps_sum += run_cop(4, 8, 50, pool_threads);
  }
  // Virtual-time output: must print the same digits in every mode.
  std::printf("cop-wall mode=%s worlds=%d virtual_rps=%.0f\n", mode,
              kWorlds, rps_sum / kWorlds);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
#if defined(__GLIBC__)
  // Every run builds and tears down whole simulated worlds. Keep the
  // freed arena resident instead of trimming it back to the OS between
  // worlds — page-fault churn is a harness artifact, not simulator cost
  // (same fix as bench_simkernel).
  mallopt(M_TRIM_THRESHOLD, 512 * 1024 * 1024);
  mallopt(M_MMAP_THRESHOLD, 256 * 1024 * 1024);
#endif
  if (argc >= 3 && std::strcmp(argv[1], "--wall") == 0) {
    return run_wall_mode(argv[2]);
  }
  if (argc != 1) {
    std::fprintf(stderr, "usage: bench_cop_scaling [--wall serial|pool=N]\n");
    return 2;
  }

  print_header("E2 — COP scaling (PBFT over RUBIN, 4 replicas, 8 clients)",
               "throughput vs number of consensus pipelines (lanes)");

  print_row({"pipelines", "rps", "speedup"});
  double base = 0;
  for (std::uint32_t p : {1u, 2u, 4u, 8u}) {
    const double rps = run_cop(p, 8, 30);
    if (p == 1) base = rps;
    print_row({std::to_string(p), fmt(rps, 0), fmt(rps / base, 2) + "x"});
  }
  std::printf(
      "\nAgreement-stage crypto parallelizes across lanes; the shared\n"
      "transport thread and ordered execution bound the speedup (Amdahl),\n"
      "matching the COP paper's observation that parallelizing *instances*\n"
      "beats parallelizing pipeline *stages*.\n");
  return 0;
}
