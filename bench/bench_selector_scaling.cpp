// Extension E4 — the paper's central claim, measured: "The Java NIO
// selector enables efficient handling of multiple network connections
// using only a single thread" (§III), and RUBIN "can handle multiple
// network connections efficiently with a single thread" (abstract).
//
// One echo server thread (one selector) serves K concurrent clients, each
// keeping a small window of 1 KB messages in flight. Aggregate throughput
// vs K shows how the single-thread multiplexing holds up — and which
// selector (epoll/TCP vs RUBIN/RDMA) saturates first.
#include <cstdio>

#include "bench_util.hpp"
#include "net/fabric.hpp"
#include "reptor/echo_stack.hpp"
#include "reptor/transport_nio.hpp"
#include "reptor/transport_rubin.hpp"
#include "rubin/context.hpp"
#include "tcpsim/tcp.hpp"
#include "verbs/cm.hpp"

using namespace rubin;
using namespace rubin::bench;
using namespace rubin::reptor;

namespace {

double run_fanin(bool use_rubin, std::uint32_t k_clients,
                 std::uint64_t msgs_per_client) {
  sim::Simulator sim;
  net::Fabric fabric(sim, net::CostModel::roce_10g(), 1 + k_clients);
  GroupLayout layout;
  layout.replica_count = 1;  // the echo server
  for (net::HostId h = 0; h < 1 + k_clients; ++h) layout.hosts.push_back(h);

  std::unique_ptr<tcpsim::TcpNetwork> tcp;
  std::unique_ptr<verbs::ConnectionManager> cm;
  std::vector<std::unique_ptr<verbs::Device>> devs;
  std::vector<std::unique_ptr<nio::RubinContext>> ctxs;

  auto make_transport = [&](NodeId id) -> std::unique_ptr<Transport> {
    if (use_rubin) {
      return std::make_unique<RubinTransport>(*ctxs[id], layout, id);
    }
    return std::make_unique<NioTransport>(*tcp, layout, id);
  };
  if (use_rubin) {
    cm = std::make_unique<verbs::ConnectionManager>(fabric);
    for (net::HostId h = 0; h < 1 + k_clients; ++h) {
      devs.push_back(std::make_unique<verbs::Device>(fabric, h));
      ctxs.push_back(std::make_unique<nio::RubinContext>(*devs.back(), *cm));
    }
  } else {
    tcp = std::make_unique<tcpsim::TcpNetwork>(fabric);
  }

  auto server = std::make_unique<EchoServer>(sim, make_transport(0));
  sim.spawn(server->run());

  std::vector<std::unique_ptr<EchoClient>> clients;
  for (std::uint32_t c = 1; c <= k_clients; ++c) {
    EchoClientConfig ecfg;
    ecfg.payload = 1024;
    ecfg.window = 4;
    ecfg.messages = msgs_per_client;
    clients.push_back(
        std::make_unique<EchoClient>(sim, make_transport(c), ecfg));
    sim.spawn(clients.back()->run());
  }

  sim.run_until(sim::seconds(60));
  server->stop();
  sim.run_until(sim.now() + sim::milliseconds(5));

  double total_rps = 0;
  for (auto& c : clients) {
    const EchoResult r = c->result();
    if (r.completed < msgs_per_client) return -1.0;  // stalled: report it
    total_rps += r.requests_per_second;
  }
  return total_rps;
}

}  // namespace

int main() {
  print_header(
      "E4 — single selector thread, many connections (1KB echo, window 4)",
      "aggregate throughput of one server thread vs number of clients");

  print_row({"clients", "TCP(NIO) rps", "Rubin rps", "rdma-vs-tcp"});
  double tcp1 = 0;
  double tcp_last = 0;
  double rdma1 = 0;
  double rdma_last = 0;
  for (std::uint32_t k : {1u, 4u, 16u, 48u}) {
    const std::uint64_t per_client = 2000 / k + 100;
    const double tcp = run_fanin(false, k, per_client);
    const double rdma = run_fanin(true, k, per_client);
    if (k == 1) {
      tcp1 = tcp;
      rdma1 = rdma;
    }
    tcp_last = tcp;
    rdma_last = rdma;
    print_row({std::to_string(k), fmt(tcp, 0), fmt(rdma, 0),
               fmt(100.0 * (rdma / tcp - 1.0)) + "%"});
  }
  std::printf(
      "\nscaling 1 -> 48 clients: TCP %.1fx, RUBIN %.1fx aggregate.\n"
      "One thread really does multiplex dozens of RDMA connections — the\n"
      "hybrid event queue merges all their completion events into one\n"
      "select() stream (paper Fig. 2), while epoll does the same for TCP.\n",
      tcp_last / tcp1, rdma_last / rdma1);
  return 0;
}
