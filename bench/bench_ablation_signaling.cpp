// Ablation A1 (paper §IV): selective signaling — request a completion only
// on every Nth send WR.
//
// Two workloads make the mechanism visible from both sides:
//  * strict ping-pong latency: send completions arrive while the thread
//    idles for the echo, so their handling cost is absorbed — latency is
//    flat across N. (The paper's Fig-3 gain comes from its *blocking*
//    Send/Receive baseline, which waits for every send's coalesced ack;
//    see bench_fig3_micro.)
//  * windowed throughput (16 outstanding): the consumer thread is busy,
//    so every completion event it must read and acknowledge costs real
//    time — here N=1 visibly loses.
#include <cstdio>

#include "bench_util.hpp"
#include "workloads/echo_kit.hpp"

using namespace rubin;
using namespace rubin::bench;
using namespace rubin::workloads;

int main() {
  print_header("Ablation A1 — selective signaling (RDMA channel echo)",
               "signal every Nth send; N=1 is the unoptimized baseline");

  const std::vector<std::uint32_t> intervals{1, 4, 16, 64};
  const std::vector<std::size_t> payloads{1024, 4096, 8 * 1024, 16 * 1024,
                                          64 * 1024};

  std::printf("--- ping-pong latency (us): completion handling hides in idle waits ---\n");
  print_row({"payload", "N=1", "N=4", "N=16", "N=64"});
  for (std::size_t payload : payloads) {
    EchoParams p;
    p.payload = payload;
    p.messages = 400;
    std::vector<std::string> cells{kb(payload)};
    for (std::uint32_t n : intervals) {
      nio::ChannelConfig cfg = default_channel_config(payload);
      cfg.signal_interval = n;
      cells.push_back(fmt(run_channel_echo(p, cfg).latency_us));
    }
    print_row(cells);
  }

  std::printf("\n--- windowed throughput (krps, 16 outstanding): events now cost ---\n");
  print_row({"payload", "N=1", "N=4", "N=16", "N=64", "N1->N16"});
  double best_gain = 0;
  std::size_t best_payload = 0;
  for (std::size_t payload : payloads) {
    EchoParams p;
    p.payload = payload;
    p.messages = 600;
    std::vector<double> krps;
    for (std::uint32_t n : intervals) {
      nio::ChannelConfig cfg = default_channel_config(payload);
      cfg.signal_interval = n;
      krps.push_back(run_channel_echo_windowed(p, cfg, 16).krps);
    }
    const double gain = 100.0 * (krps[2] / krps[0] - 1.0);
    if (gain > best_gain) {
      best_gain = gain;
      best_payload = payload;
    }
    print_row({kb(payload), fmt(krps[0], 2), fmt(krps[1], 2), fmt(krps[2], 2),
               fmt(krps[3], 2), fmt(gain) + "%"});
  }
  std::printf(
      "\npeak throughput gain from selective signaling: %.1f %% at %s\n"
      "(paper: up to 30 %% latency gain below 16KB vs the blocking\n"
      "Send/Receive baseline — reproduced in bench_fig3_micro)\n",
      best_gain, kb(best_payload).c_str());
  return 0;
}
