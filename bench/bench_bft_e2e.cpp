// Extension E1 (paper §VII: "extensively evaluate the fully replicated
// system"): end-to-end PBFT with f=1 (4 replicas) over the NIO/TCP
// transport vs the RUBIN/RDMA transport. Closed-loop clients issue
// counter increments; we report mean request latency and group throughput
// for the request sizes BFT systems typically carry (paper §V: "BFT
// protocols exchange mostly small messages of several kilobytes").
//
// The third column is the one-sided fast path (DESIGN.md §12): the
// primary RDMA-writes decision records into per-replica rings and 2f+1
// ack-cell endorsements commit — 2 one-way delays to a backup commit
// instead of the message path's 3 (PRE-PREPARE, PREPARE, COMMIT). The
// commit-path table reports propose-to-commit latency normalized by the
// fabric's one-way propagation, and the bench *fails* (non-zero exit, CI
// bench-smoke gates on it) if the fast path stops committing in strictly
// fewer message delays and lower end-to-end latency than the message
// path in the fault-free case.
#include <cstdio>
#include <map>

#include "bench_util.hpp"
#include "common/codec.hpp"
#include "common/stats.hpp"
#include "workloads/bft_harness.hpp"

using namespace rubin;
using namespace rubin::bench;
using namespace rubin::reptor;

namespace {

struct E2eResult {
  double mean_latency_us = 0;
  double p99_latency_us = 0;
  double requests_per_second = 0;
  /// Mean propose-to-commit latency at a backup, in microseconds and
  /// normalized by the one-way propagation delay ("message delays").
  double commit_latency_us = 0;
  double commit_delays = 0;
  /// Fraction of the observer backup's committed batches that went
  /// through the 2f+1 ack-cell fast path rather than PREPARE/COMMIT.
  double fast_share = 0;
};

E2eResult run_bft(Backend backend, std::size_t request_size, int per_client,
                  std::uint32_t n_clients, bool onesided = false,
                  nio::DecisionLogConfig dcfg = {}) {
  BftHarness h(backend, 4, n_clients);
  if (onesided) h.enable_decision_log(dcfg);
  ReplicaConfig cfg;
  cfg.batch_size = 8;
  cfg.batch_timeout = sim::microseconds(100);
  cfg.checkpoint_interval = 32;
  h.add_replicas({}, cfg);

  // Propose-to-commit latency, measured at backup 1 (fault-free: the
  // view never changes, replica 0 stays primary).
  std::map<std::uint64_t, sim::Time> proposed;
  LatencyRecorder commit_lat;
  h.replica(0).set_propose_observer(
      [&h, &proposed](std::uint64_t seq, const PrePrepare&) {
        proposed.emplace(seq, h.sim().now());
      });
  h.replica(1).set_commit_observer(
      [&h, &proposed, &commit_lat](std::uint64_t seq, const PrePrepare&) {
        const auto it = proposed.find(seq);
        if (it != proposed.end()) {
          commit_lat.add(sim::to_us(h.sim().now() - it->second));
        }
      });

  int done = 0;
  for (std::uint32_t c = 0; c < n_clients; ++c) {
    auto& client = h.add_client(4 + c);
    h.sim().spawn([](Client& cl, std::size_t size, int count, int& done)
                      -> sim::Task<> {
      co_await cl.start();
      // Operation payload padded to the requested size.
      std::string op = "add:1";
      op.resize(std::max(op.size(), size), 'x');
      for (int i = 0; i < count; ++i) {
        (void)co_await cl.invoke(to_bytes(op));
      }
      ++done;
    }(client, request_size, per_client, done));
  }

  // Run until every client finished (bounded by a 30 s guard).
  const sim::Time t0 = h.sim().now();
  while (done < static_cast<int>(n_clients) &&
         h.sim().now() < sim::seconds(30)) {
    h.sim().run_until(h.sim().now() + sim::milliseconds(1));
  }
  const sim::Time t1 = h.sim().now();
  h.stop_all();

  E2eResult r;
  double mean_sum = 0;
  for (std::uint32_t c = 0; c < n_clients; ++c) {
    mean_sum += h.client(c).latencies().mean();
  }
  r.mean_latency_us = mean_sum / n_clients;
  const std::uint64_t executed = h.replica(0).stats().requests_executed;
  const double secs = sim::to_s(t1 - t0);
  r.requests_per_second =
      secs > 0 ? static_cast<double>(executed) / secs : 0;
  r.commit_latency_us = commit_lat.count() ? commit_lat.mean() : 0;
  r.commit_delays = r.commit_latency_us /
                    sim::to_us(net::CostModel::roce_10g().propagation);
  const ReplicaStats& backup = h.replica(1).stats();
  r.fast_share = backup.batches_committed
                     ? static_cast<double>(backup.fast_commits) /
                           static_cast<double>(backup.batches_committed)
                     : 0;
  return r;
}

}  // namespace

int main() {
  print_header("E1 — fully replicated PBFT, f=1 (4 replicas), 4 clients",
               "request latency and group throughput: NIO/TCP vs RUBIN/RDMA "
               "vs the one-sided fast path");

  struct SizeRun {
    std::size_t size;
    E2eResult tcp, rdma, ones;
  };
  std::vector<SizeRun> runs;
  print_row({"req-size", "tcp-lat(us)", "rdma-lat(us)", "1s-lat(us)",
             "tcp-rps", "rdma-rps", "1s-rps"}, 13);
  for (std::size_t size : {std::size_t{128}, std::size_t{1024},
                           std::size_t{4096}}) {
    SizeRun sr;
    sr.size = size;
    sr.tcp = run_bft(Backend::kNio, size, 40, 4);
    sr.rdma = run_bft(Backend::kRubin, size, 40, 4);
    // Slots sized for a full batch (8 ops + framing) at every req size.
    nio::DecisionLogConfig dcfg;
    dcfg.slot_payload = 64 * 1024;
    sr.ones = run_bft(Backend::kRubin, size, 40, 4, /*onesided=*/true, dcfg);
    print_row({std::to_string(size) + "B", fmt(sr.tcp.mean_latency_us),
               fmt(sr.rdma.mean_latency_us), fmt(sr.ones.mean_latency_us),
               fmt(sr.tcp.requests_per_second, 0),
               fmt(sr.rdma.requests_per_second, 0),
               fmt(sr.ones.requests_per_second, 0)}, 13);
    runs.push_back(sr);
  }
  std::printf(
      "\nThe agreement stage (3 broadcast rounds) multiplies every per-message\n"
      "transport saving — the paper's core motivation for RDMA in BFT (§I).\n");

  // Commit-path comparison: propose-to-commit at a backup, absolute and
  // in one-way propagation delays. Message path: PRE-PREPARE + PREPARE +
  // COMMIT = 3 one-way delays before a backup commits; fast path:
  // decision-record write + ack-cell quorum = 2.
  std::printf("\n--- commit path: message-passing vs one-sided writes "
              "(RUBIN transport) ---\n");
  print_row({"req-size", "msg-clat(us)", "1s-clat(us)", "msg-delays",
             "1s-delays", "fast-share"}, 13);
  bool gate_ok = true;
  for (const SizeRun& sr : runs) {
    print_row({std::to_string(sr.size) + "B", fmt(sr.rdma.commit_latency_us),
               fmt(sr.ones.commit_latency_us), fmt(sr.rdma.commit_delays),
               fmt(sr.ones.commit_delays),
               fmt(100.0 * sr.ones.fast_share, 0) + "%"}, 13);
    gate_ok = gate_ok &&
              sr.ones.commit_delays < sr.rdma.commit_delays &&
              sr.ones.mean_latency_us < sr.rdma.mean_latency_us &&
              sr.ones.fast_share > 0;
  }

  // Ablation: the follower's ring poll interval trades commit latency
  // against poll work. The default (0.5us) sits left of the knee.
  std::printf("\n--- ablation: decision-ring poll interval (1KB ops) ---\n");
  print_row({"poll(us)", "1s-lat(us)", "1s-delays", "fast-share"}, 13);
  for (double poll_us : {0.2, 0.5, 2.0, 8.0}) {
    nio::DecisionLogConfig dcfg;
    dcfg.poll_interval = sim::microseconds(poll_us);
    const E2eResult r =
        run_bft(Backend::kRubin, 1024, 40, 4, /*onesided=*/true, dcfg);
    print_row({fmt(poll_us), fmt(r.mean_latency_us), fmt(r.commit_delays),
               fmt(100.0 * r.fast_share, 0) + "%"}, 13);
  }

  if (!gate_ok) {
    std::printf("\nFAIL: the one-sided fast path did not commit in strictly "
                "fewer message delays\nand lower end-to-end latency than the "
                "message path in the fault-free case.\n");
    return 1;
  }
  std::printf("\nPASS: fault-free, the fast path commits in strictly fewer "
              "message delays and\nlower end-to-end latency than "
              "PREPARE/COMMIT at every request size.\n");

  // Read-only fast path (PBFT §4.1): one round trip, no ordering.
  std::printf("\n--- read-only optimization (1KB ops, RUBIN transport) ---\n");
  {
    BftHarness h(Backend::kRubin, 4, 1);
    ReplicaConfig cfg;
    cfg.batch_timeout = sim::microseconds(100);
    h.add_replicas({}, cfg);
    auto& client = h.add_client(4);
    double write_us = 0;
    double read_us = 0;
    int done = 0;
    h.sim().spawn([](sim::Simulator& s, Client& c, double& w, double& r,
                     int& done) -> sim::Task<> {
      co_await c.start();
      std::string op = "add:1";
      op.resize(1024, 'x');
      LatencyRecorder wl;
      LatencyRecorder rl;
      for (int i = 0; i < 30; ++i) {
        sim::Time t0 = s.now();
        (void)co_await c.invoke(to_bytes(op));
        wl.add(sim::to_us(s.now() - t0));
        t0 = s.now();
        (void)co_await c.invoke_read_only(to_bytes("get"));
        rl.add(sim::to_us(s.now() - t0));
      }
      w = wl.mean();
      r = rl.mean();
      done = 1;
    }(h.sim(), client, write_us, read_us, done));
    while (done < 1 && h.sim().now() < sim::seconds(20)) {
      h.sim().run_until(h.sim().now() + sim::milliseconds(1));
    }
    h.stop_all();
    std::printf("  ordered write: %7.1f us   read-only: %7.1f us   (%.1fx faster)\n",
                write_us, read_us, write_us / read_us);
  }
  return 0;
}
