// Extension E1 (paper §VII: "extensively evaluate the fully replicated
// system"): end-to-end PBFT with f=1 (4 replicas) over the NIO/TCP
// transport vs the RUBIN/RDMA transport. Closed-loop clients issue
// counter increments; we report mean request latency and group throughput
// for the request sizes BFT systems typically carry (paper §V: "BFT
// protocols exchange mostly small messages of several kilobytes").
#include <cstdio>

#include "bench_util.hpp"
#include "common/codec.hpp"
#include "common/stats.hpp"
#include "workloads/bft_harness.hpp"

using namespace rubin;
using namespace rubin::bench;
using namespace rubin::reptor;

namespace {

struct E2eResult {
  double mean_latency_us = 0;
  double p99_latency_us = 0;
  double requests_per_second = 0;
};

E2eResult run_bft(Backend backend, std::size_t request_size, int per_client,
                  std::uint32_t n_clients) {
  BftHarness h(backend, 4, n_clients);
  ReplicaConfig cfg;
  cfg.batch_size = 8;
  cfg.batch_timeout = sim::microseconds(100);
  cfg.checkpoint_interval = 32;
  h.add_replicas({}, cfg);

  int done = 0;
  for (std::uint32_t c = 0; c < n_clients; ++c) {
    auto& client = h.add_client(4 + c);
    h.sim().spawn([](Client& cl, std::size_t size, int count, int& done)
                      -> sim::Task<> {
      co_await cl.start();
      // Operation payload padded to the requested size.
      std::string op = "add:1";
      op.resize(std::max(op.size(), size), 'x');
      for (int i = 0; i < count; ++i) {
        (void)co_await cl.invoke(to_bytes(op));
      }
      ++done;
    }(client, request_size, per_client, done));
  }

  // Run until every client finished (bounded by a 30 s guard).
  const sim::Time t0 = h.sim().now();
  while (done < static_cast<int>(n_clients) &&
         h.sim().now() < sim::seconds(30)) {
    h.sim().run_until(h.sim().now() + sim::milliseconds(1));
  }
  const sim::Time t1 = h.sim().now();
  h.stop_all();

  E2eResult r;
  double mean_sum = 0;
  for (std::uint32_t c = 0; c < n_clients; ++c) {
    mean_sum += h.client(c).latencies().mean();
  }
  r.mean_latency_us = mean_sum / n_clients;
  const std::uint64_t executed = h.replica(0).stats().requests_executed;
  const double secs = sim::to_s(t1 - t0);
  r.requests_per_second =
      secs > 0 ? static_cast<double>(executed) / secs : 0;
  return r;
}

}  // namespace

int main() {
  print_header("E1 — fully replicated PBFT, f=1 (4 replicas), 4 clients",
               "request latency and group throughput, NIO/TCP vs RUBIN/RDMA");

  print_row({"req-size", "tcp-lat(us)", "rdma-lat(us)", "lat-gain",
             "tcp-rps", "rdma-rps", "thr-gain"}, 13);
  for (std::size_t size : {std::size_t{128}, std::size_t{1024},
                           std::size_t{4096}}) {
    const E2eResult tcp = run_bft(Backend::kNio, size, 40, 4);
    const E2eResult rdma = run_bft(Backend::kRubin, size, 40, 4);
    print_row({std::to_string(size) + "B", fmt(tcp.mean_latency_us),
               fmt(rdma.mean_latency_us),
               fmt(100.0 * (1.0 - rdma.mean_latency_us / tcp.mean_latency_us)) + "%",
               fmt(tcp.requests_per_second, 0), fmt(rdma.requests_per_second, 0),
               fmt(100.0 * (rdma.requests_per_second /
                                tcp.requests_per_second - 1.0)) + "%"}, 13);
  }
  std::printf(
      "\nThe agreement stage (3 broadcast rounds) multiplies every per-message\n"
      "transport saving — the paper's core motivation for RDMA in BFT (§I).\n");

  // Read-only fast path (PBFT §4.1): one round trip, no ordering.
  std::printf("\n--- read-only optimization (1KB ops, RUBIN transport) ---\n");
  {
    BftHarness h(Backend::kRubin, 4, 1);
    ReplicaConfig cfg;
    cfg.batch_timeout = sim::microseconds(100);
    h.add_replicas({}, cfg);
    auto& client = h.add_client(4);
    double write_us = 0;
    double read_us = 0;
    int done = 0;
    h.sim().spawn([](sim::Simulator& s, Client& c, double& w, double& r,
                     int& done) -> sim::Task<> {
      co_await c.start();
      std::string op = "add:1";
      op.resize(1024, 'x');
      LatencyRecorder wl;
      LatencyRecorder rl;
      for (int i = 0; i < 30; ++i) {
        sim::Time t0 = s.now();
        (void)co_await c.invoke(to_bytes(op));
        wl.add(sim::to_us(s.now() - t0));
        t0 = s.now();
        (void)co_await c.invoke_read_only(to_bytes("get"));
        rl.add(sim::to_us(s.now() - t0));
      }
      w = wl.mean();
      r = rl.mean();
      done = 1;
    }(h.sim(), client, write_us, read_us, done));
    while (done < 1 && h.sim().now() < sim::seconds(20)) {
      h.sim().run_until(h.sim().now() + sim::milliseconds(1));
    }
    h.stop_all();
    std::printf("  ordered write: %7.1f us   read-only: %7.1f us   (%.1fx faster)\n",
                write_us, read_us, write_us / read_us);
  }
  return 0;
}
