// Ablation A2 (paper §IV): inline sends. "Sending messages as inline
// provides better latency, as the RDMA device does not need to perform
// additional read operations to get the payload. This is especially
// beneficial for small messages." Sweeps small payloads with inlining
// enabled (<=256 B threshold) and disabled.
#include <cstdio>

#include "bench_util.hpp"
#include "workloads/echo_kit.hpp"

using namespace rubin;
using namespace rubin::bench;
using namespace rubin::workloads;

int main() {
  print_header("Ablation A2 — inline sends (RDMA channel echo)",
               "inline_threshold 256 vs 0 (disabled); small payloads");

  print_row({"payload", "inline-on", "inline-off", "gain"});
  for (std::size_t payload : {std::size_t{64}, std::size_t{128},
                              std::size_t{256}, std::size_t{512},
                              std::size_t{1024}, std::size_t{4096}}) {
    EchoParams p;
    p.payload = payload;
    p.messages = 500;

    nio::ChannelConfig on = default_channel_config(payload);
    on.inline_threshold = 256;
    nio::ChannelConfig off = on;
    off.inline_threshold = 0;

    const double lat_on = run_channel_echo(p, on).latency_us;
    const double lat_off = run_channel_echo(p, off).latency_us;
    const bool inlined = payload <= 256;
    char label[32];
    std::snprintf(label, sizeof(label), "%zuB%s", payload,
                  inlined ? "" : " (>thr)");
    print_row({label, fmt(lat_on, 2), fmt(lat_off, 2),
               fmt(100.0 * (1.0 - lat_on / lat_off)) + "%"});
  }
  std::printf(
      "\npayloads above the 256B threshold are never inlined, so the two\n"
      "columns converge there — the paper's rationale for the cutoff.\n");
  return 0;
}
